"""Plan execution: candidate evaluation, parsing, filtering, joining.

Implements the two-phase evaluation of Section 6 — "(i) the query is
compiled into an inclusion expression that computes a super set of the
required result - a set of candidate regions, and (ii) the candidate regions
are further processed to obtain the exact result" — plus the index-assisted
join of Section 5.2 and the full-scan baseline.

All costs are tallied in an :class:`ExecutionStats`: algebra operation
counts, candidate counts, bytes of file text parsed, and database values
built.  Benchmarks read these next to wall-clock numbers.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.algebra.counters import OperationCounters
from repro.algebra.region import Region, RegionSet
from repro.cache import (
    CacheConfig,
    CacheStats,
    CandidateParseMemo,
    ParseFailure,
    ParseOutcome,
)
from repro.core.planner import Plan
from repro.core.translate import Translator
from repro.db.evaluator import NaiveEvaluator
from repro.db.model import Database
from repro.db.query import PathComparison, Query, TrueCondition
from repro.db.values import ObjectValue, Value
from repro.errors import CandidateParseError, ParseError, PlanningError
from repro.feedback.calibrate import ReplanTriggered, make_node_guard
from repro.feedback.history import ReplanEvent
from repro.index.engine import IndexEngine
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.resilience.warnings import (
    REPLANNED,
    QueryWarning,
    malformed_region_warning,
)
from repro.schema.parser import ParseNode
from repro.schema.pushdown import AnchoredTrie, InstantiationStats, PathTrie
from repro.schema.structuring import StructuringSchema

if TYPE_CHECKING:  # pragma: no cover
    from repro.feedback.calibrate import CalibratedCostModel
    from repro.resilience.budget import BudgetMeter


@dataclass
class ExecutionStats:
    """The measured cost of executing one plan."""

    strategy: str = ""
    candidate_regions: int = 0
    result_regions: int = 0
    bytes_parsed: int = 0
    values_built: int = 0
    objects_filtered_out: int = 0
    rows: int = 0
    algebra: OperationCounters = field(default_factory=OperationCounters)
    join_bytes_compared: int = 0
    #: Engine-cache activity attributed to this query (zero when the engine
    #: runs uncached): region-expression cache and candidate-parse memo
    #: hits/misses, and the file bytes a memo hit saved from re-parsing.
    cache_expression_hits: int = 0
    cache_expression_misses: int = 0
    cache_parse_hits: int = 0
    cache_parse_misses: int = 0
    bytes_parse_avoided: int = 0
    #: Structured non-fatal incidents (skipped malformed regions, index
    #: degradation decisions) — :class:`~repro.resilience.QueryWarning`s.
    warnings: list[QueryWarning] = field(default_factory=list)
    #: Candidate regions that failed to re-parse (a subset of
    #: ``objects_filtered_out`` — corruption/staleness signal, not filtering).
    malformed_regions: int = 0
    #: Mid-query adaptive re-planning decisions (dict records, see
    #: :class:`~repro.feedback.history.ReplanEvent`): taken when a node's
    #: actual cardinality blew past its calibrated estimate and the
    #: executor abandoned the index strategy for a full scan.
    replans: list[dict] = field(default_factory=list)

    @property
    def cache_hits(self) -> int:
        return self.cache_expression_hits + self.cache_parse_hits

    @property
    def cache_misses(self) -> int:
        return self.cache_expression_misses + self.cache_parse_misses

    def summary(self) -> str:
        lines = [
            f"strategy:          {self.strategy}",
            f"candidates:        {self.candidate_regions}",
            f"results:           {self.result_regions} regions, {self.rows} rows",
            f"bytes parsed:      {self.bytes_parsed}",
            f"values built:      {self.values_built}",
            f"filtered out:      {self.objects_filtered_out}",
            f"algebra ops:       {self.algebra.total_operations} "
            f"({self.algebra.comparisons} comparisons)",
        ]
        if self.join_bytes_compared:
            lines.append(f"join bytes:        {self.join_bytes_compared}")
        if self.replans:
            lines.append(f"replans:           {len(self.replans)}")
        if self.warnings:
            lines.append(f"warnings:          {len(self.warnings)}")
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"cache:             expr {self.cache_expression_hits}h/"
                f"{self.cache_expression_misses}m, parse {self.cache_parse_hits}h/"
                f"{self.cache_parse_misses}m, {self.bytes_parse_avoided} bytes "
                "not reparsed"
            )
        return "\n".join(lines)


@dataclass
class Execution:
    """Rows plus the regions they came from plus the cost tally."""

    rows: list[tuple[Value, ...]]
    regions: RegionSet
    stats: ExecutionStats


class PlanExecutor:
    """Executes plans against one indexed corpus."""

    def __init__(
        self,
        schema: StructuringSchema,
        index_engine: IndexEngine,
        translator: Translator,
        cache_config: CacheConfig | None = None,
        cache_stats: CacheStats | None = None,
        cost_model: "CalibratedCostModel | None" = None,
    ) -> None:
        self._schema = schema
        self._engine = index_engine
        self._translator = translator
        #: Optional feedback-calibrated cost model: enables the mid-query
        #: replan guard and feeds actual cardinalities back into history.
        self._cost_model = cost_model
        self._cache_config = cache_config if cache_config is not None else CacheConfig.disabled()
        self._cache_stats = cache_stats if cache_stats is not None else CacheStats()
        self._parse_memo: CandidateParseMemo | None = (
            CandidateParseMemo(
                max_entries=self._cache_config.parse_memo_size, stats=self._cache_stats
            )
            if self._cache_config.caches_parses
            else None
        )
        #: The parse tree (and its byte cost) of the last planner-chosen
        #: full scan; the corpus is immutable, so one tree serves them all.
        #: Guarded by a lock: concurrent queries on one engine must not
        #: observe a half-assigned memo.
        self._full_scan_tree: tuple[ParseNode, int] | None = None
        self._full_scan_lock = threading.Lock()

    # -- dispatch -----------------------------------------------------------------

    def execute(
        self,
        plan: Plan,
        use_cache: bool = True,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
        meter: "BudgetMeter | None" = None,
        skip_malformed: bool = True,
    ) -> Execution:
        """Execute ``plan``.  ``use_cache=False`` bypasses the parse memo
        and full-scan tree cache (the forced-baseline pipeline uses this so
        baseline measurements always pay the real parsing cost).

        ``meter`` enforces a :class:`~repro.resilience.ResourceBudget`
        inside the operator and candidate-parsing loops
        (:class:`~repro.errors.BudgetExceededError` on breach).
        ``skip_malformed=False`` aborts on a candidate region that fails to
        re-parse (:class:`~repro.errors.CandidateParseError`) instead of
        skipping it with a structured warning.
        """
        expr_hits = self._cache_stats.expression_hits
        expr_misses = self._cache_stats.expression_misses
        with tracer.span("execute") as span:
            try:
                execution = self._dispatch(
                    plan, use_cache, tracer, meter, skip_malformed
                )
            except ReplanTriggered as trigger:
                execution = self._replan_full_scan(
                    plan, trigger, use_cache, tracer, meter
                )
            stats = execution.stats
            stats.cache_expression_hits += (
                self._cache_stats.expression_hits - expr_hits
            )
            stats.cache_expression_misses += (
                self._cache_stats.expression_misses - expr_misses
            )
            span.annotate(
                strategy=stats.strategy,
                rows=stats.rows,
                candidate_regions=stats.candidate_regions,
                bytes_parsed=stats.bytes_parsed,
                cache_hits=stats.cache_hits,
                cache_misses=stats.cache_misses,
            )
        return execution

    def _dispatch(
        self,
        plan: Plan,
        use_cache: bool,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
        meter: "BudgetMeter | None" = None,
        skip_malformed: bool = True,
    ) -> Execution:
        if plan.strategy == "empty":
            stats = ExecutionStats(strategy="empty")
            return Execution(rows=[], regions=RegionSet.empty(), stats=stats)
        if plan.strategy == "full-scan":
            return self._execute_full_scan(plan, use_cache, tracer, meter)
        if plan.strategy == "index-join":
            return self._execute_join(plan, use_cache, tracer, meter, skip_malformed)
        if plan.strategy == "index-multi":
            return self._execute_multi(plan, use_cache, tracer, meter, skip_malformed)
        if plan.strategy in ("index-exact", "index-candidates"):
            return self._execute_index(plan, use_cache, tracer, meter, skip_malformed)
        raise PlanningError(f"unknown strategy {plan.strategy!r}")

    def _active_guard(self):
        """The evaluator's per-node replan guard — armed only when the cost
        model is calibrated (cold runs behave exactly as without feedback)."""
        model = self._cost_model
        if model is None or not model.config.enabled or not model.calibrated:
            return None
        return make_node_guard(model)

    def _observe(self, expression, actual: int) -> None:
        """Feed one actual cardinality back into the feedback history."""
        model = self._cost_model
        if model is not None and model.config.enabled:
            model.observe(expression, actual)

    def _replan_full_scan(
        self,
        plan: Plan,
        trigger: ReplanTriggered,
        use_cache: bool,
        tracer: "Tracer | NullTracer",
        meter: "BudgetMeter | None",
    ) -> Execution:
        """Adaptive mid-query re-planning: a node's actual cardinality blew
        past its calibrated estimate, so the index strategy is abandoned
        and the query re-runs through the full-scan pipeline (identical
        rows — Theorem 3.6 equivalence; only costs change).  The blow-up is
        recorded in history so the *next* plan is chosen under corrected
        costs, and the decision surfaces as a ``replanned`` span, a
        structured warning, and a ``stats.replans`` record."""
        model = self._cost_model
        assert model is not None  # the guard only exists with a model
        event = ReplanEvent(
            node=str(trigger.node),
            estimated=trigger.estimated,
            actual=trigger.actual,
            factor=model.config.replan_factor,
            from_strategy=plan.strategy,
            to_strategy="full-scan",
        )
        self._observe(trigger.node, trigger.actual)
        with tracer.span(
            "replanned",
            node=str(trigger.node),
            estimated=trigger.estimated,
            actual=trigger.actual,
        ):
            execution = self._execute_full_scan(plan, use_cache, tracer, meter)
        stats = execution.stats
        stats.strategy = "full-scan(replanned)"
        stats.replans.append(event.to_dict())
        stats.warnings.insert(
            0,
            QueryWarning(
                REPLANNED,
                f"node {trigger.node} produced {trigger.actual} regions "
                f"(estimated {trigger.estimated:.1f}, over "
                f"{model.config.replan_factor:g}x); replanned to full scan",
                detail=event.to_dict(),
            ),
        )
        return execution

    def _run_indexed(
        self,
        expression,
        tracer: "Tracer | NullTracer",
        label: str = "index-eval",
        meter: "BudgetMeter | None" = None,
        **span_metrics,
    ):
        """Evaluate a region expression under an ``index-eval`` span with
        per-algebra-operator child spans synthesized from the counters."""
        with tracer.span(label, **span_metrics) as span:
            evaluation = self._engine.run(
                expression, budget=meter, node_guard=self._active_guard()
            )
            counters = evaluation.counters
            span.annotate(
                regions=len(evaluation.result),
                operations=counters.total_operations,
                comparisons=counters.comparisons,
                regions_out=counters.regions_out,
            )
            for symbol, count in sorted(counters.operations.items()):
                span.add_child(f"op:{symbol}", applications=count)
        return evaluation

    # -- index strategies ------------------------------------------------------------

    def _execute_index(
        self,
        plan: Plan,
        use_cache: bool = True,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
        meter: "BudgetMeter | None" = None,
        skip_malformed: bool = True,
    ) -> Execution:
        stats = ExecutionStats(strategy=plan.strategy)
        assert plan.optimized_expression is not None
        evaluation = self._run_indexed(plan.optimized_expression, tracer, meter=meter)
        stats.algebra = evaluation.counters
        candidates = evaluation.result
        stats.candidate_regions = len(candidates)
        self._observe(plan.optimized_expression, len(candidates))
        return self._parse_filter_output(
            plan, candidates, stats, exact=plan.exact, use_cache=use_cache,
            tracer=tracer, meter=meter, skip_malformed=skip_malformed,
        )

    def _parse_filter_output(
        self,
        plan: Plan,
        candidates: RegionSet,
        stats: ExecutionStats,
        exact: bool,
        use_cache: bool = True,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
        meter: "BudgetMeter | None" = None,
        skip_malformed: bool = True,
    ) -> Execution:
        """Parse candidate regions, filter if needed, and produce rows."""
        query = plan.query
        trie = self._translator.needed_paths(query)
        parsed = self._parse_candidates(
            query.source_class, candidates, trie, stats, use_cache=use_cache,
            tracer=tracer, meter=meter, skip_malformed=skip_malformed,
        )
        database = Database()
        region_of: dict[int, Region] = {}
        kept_objects: list[ObjectValue] = []
        checker = NaiveEvaluator(Database())  # only used for object_satisfies
        with tracer.span("db-instantiate") as span:
            for region, obj in parsed:
                if not exact and not checker.object_satisfies(query, obj):
                    stats.objects_filtered_out += 1
                    continue
                kept_objects.append(obj)
                region_of[obj.oid] = region
                database.insert(obj)
            span.annotate(
                objects=len(kept_objects),
                filtered_out=stats.objects_filtered_out,
            )
        final_query = query if not exact else Query(
            outputs=query.outputs,
            source_class=query.source_class,
            var=query.var,
            where=query.where if _outputs_need_where(query) else TrueCondition(),
        )
        evaluator = NaiveEvaluator(database)
        with tracer.span("db-evaluate") as span:
            rows = evaluator.evaluate(final_query)
            span.annotate(rows=len(rows))
        stats.rows = len(rows)
        result_regions = RegionSet(region_of[obj.oid] for obj in kept_objects)
        if query.is_identity_select():
            result_regions = RegionSet(
                region_of[row[0].oid]
                for row in rows
                if isinstance(row[0], ObjectValue) and row[0].oid in region_of
            )
        stats.result_regions = len(result_regions)
        return Execution(rows=rows, regions=result_regions, stats=stats)

    def _parse_candidates(
        self,
        source_class: str,
        candidates: RegionSet,
        trie: PathTrie,
        stats: ExecutionStats,
        use_cache: bool = True,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
        meter: "BudgetMeter | None" = None,
        skip_malformed: bool = True,
    ) -> list[tuple[Region, ObjectValue]]:
        """Re-parse each candidate region as the source non-terminal and
        instantiate it (restricted to the push-down trie).

        Parses are memoized per ``(source class, region, trie fingerprint)``
        when the engine caches: repeated or overlapping queries skip the
        file bytes entirely (the corpus is immutable, so an outcome can
        never go stale).  Failed parses memoize too.
        """
        with tracer.span("candidate-parse", source=source_class) as parse_span:
            parsed = self._parse_candidate_regions(
                source_class, candidates, trie, stats, use_cache, parse_span,
                meter, skip_malformed,
            )
        return parsed

    def _reject_candidate(
        self,
        error: ParseError,
        region: Region,
        stats: ExecutionStats,
        skip_malformed: bool,
    ) -> None:
        """Account one candidate region that failed to re-parse: skip it
        with a structured warning, or abort the query under a strict
        policy — re-raising with ``position``/``symbol`` preserved."""
        if not skip_malformed:
            raise CandidateParseError.wrap(error, (region.start, region.end)) from error
        stats.objects_filtered_out += 1
        stats.malformed_regions += 1
        stats.warnings.append(malformed_region_warning(error, region))

    def _parse_candidate_regions(
        self,
        source_class: str,
        candidates: RegionSet,
        trie: PathTrie,
        stats: ExecutionStats,
        use_cache: bool,
        parse_span,
        meter: "BudgetMeter | None" = None,
        skip_malformed: bool = True,
    ) -> list[tuple[Region, ObjectValue]]:
        memo = self._parse_memo if use_cache else None
        trie_fingerprint = trie.fingerprint() if memo is not None else None
        parsed: list[tuple[Region, ObjectValue]] = []
        counters = OperationCounters()
        instantiation = InstantiationStats()
        cache_hits_before = stats.cache_parse_hits
        cache_misses_before = stats.cache_parse_misses
        for region in candidates:
            if meter is not None:
                meter.check_deadline()
            memo_key = None
            if memo is not None:
                memo_key = CandidateParseMemo.key(source_class, region, trie_fingerprint)
                outcome = memo.get(memo_key)
                if outcome is not None:
                    stats.cache_parse_hits += 1
                    stats.bytes_parse_avoided += outcome.bytes_cost
                    if outcome.value is not None:
                        parsed.append((region, outcome.value))
                    elif outcome.parse_error is not None:
                        self._reject_candidate(
                            ParseError(
                                outcome.parse_error.message,
                                position=outcome.parse_error.position,
                                symbol=outcome.parse_error.symbol,
                            ),
                            region,
                            stats,
                            skip_malformed,
                        )
                    else:
                        stats.objects_filtered_out += 1
                    continue
                stats.cache_parse_misses += 1
            bytes_before = counters.bytes_scanned
            values_before = instantiation.values_built
            try:
                node = self._schema.parse(
                    self._engine.text,
                    symbol=source_class,
                    start=region.start,
                    end=region.end,
                    counters=counters,
                )
            except ParseError as error:
                # A candidate that fails to re-parse cannot be an answer.
                if memo_key is not None:
                    memo.put(
                        memo_key,
                        ParseOutcome(
                            value=None,
                            bytes_cost=counters.bytes_scanned - bytes_before,
                            values_built=0,
                            parse_error=ParseFailure.of(error),
                        ),
                    )
                self._reject_candidate(error, region, stats, skip_malformed)
                continue
            if meter is not None:
                meter.charge_bytes(counters.bytes_scanned - bytes_before)
            value = self._schema.instantiate(node, needed=trie, stats=instantiation)
            obj = value if isinstance(value, ObjectValue) else None
            if obj is not None:
                parsed.append((region, obj))
            else:
                stats.objects_filtered_out += 1
            if memo_key is not None:
                memo.put(
                    memo_key,
                    ParseOutcome(
                        value=obj,
                        bytes_cost=counters.bytes_scanned - bytes_before,
                        values_built=instantiation.values_built - values_before,
                    ),
                )
        stats.bytes_parsed += counters.bytes_scanned
        stats.values_built += instantiation.values_built
        parse_span.annotate(
            candidates=len(candidates),
            parsed=len(parsed),
            bytes_parsed=counters.bytes_scanned,
            values_built=instantiation.values_built,
            cache_hits=stats.cache_parse_hits - cache_hits_before,
            cache_misses=stats.cache_parse_misses - cache_misses_before,
        )
        return parsed

    # -- multi-variable queries (Section 5.2's join discussion) ----------------------------

    def _execute_multi(
        self,
        plan: Plan,
        use_cache: bool = True,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
        meter: "BudgetMeter | None" = None,
        skip_malformed: bool = True,
    ) -> Execution:
        """Narrow each range variable's extent through the index, parse only
        the surviving candidates, then run the database join loops."""
        stats = ExecutionStats(strategy="index-multi")
        query = plan.query
        database = Database()
        extents_by_var: dict[str, tuple[ObjectValue, ...]] = {}
        region_of: dict[int, Region] = {}
        # Under calibration the planner orders narrowing work by ascending
        # estimated cardinality (cheapest extents first) so an empty extent
        # short-circuits the join before the expensive variables are even
        # parsed.  Row *output* order is untouched: the database join below
        # always iterates in ``query.sources`` order.
        sources = list(query.sources)
        if plan.join_order:
            by_var = {source.var: source for source in sources}
            scheduled = [by_var[var] for var in plan.join_order if var in by_var]
            scheduled += [s for s in sources if s.var not in plan.join_order]
            sources = scheduled
        for source in sources:
            expression = plan.per_variable.get(source.var)
            if expression is None:
                candidates = self._engine.instance.get(source.class_name)
                if meter is not None:
                    meter.charge_regions(len(candidates))
            else:
                evaluation = self._run_indexed(
                    expression, tracer, variable=source.var, meter=meter
                )
                stats.algebra.merge(evaluation.counters)
                candidates = evaluation.result
                self._observe(expression, len(candidates))
            stats.candidate_regions += len(candidates)
            if plan.join_order and not candidates:
                # Any empty extent makes the cross product empty; skip the
                # remaining variables' narrowing and parsing entirely.
                stats.rows = 0
                stats.result_regions = 0
                return Execution(
                    rows=[], regions=RegionSet.empty(), stats=stats
                )
            trie = self._translator.needed_paths(query, var=source.var)
            parsed = self._parse_candidates(
                source.class_name, candidates, trie, stats, use_cache=use_cache,
                tracer=tracer, meter=meter, skip_malformed=skip_malformed,
            )
            objects = []
            with tracer.span("db-instantiate", variable=source.var) as span:
                for region, obj in parsed:
                    database.insert(obj)
                    region_of[obj.oid] = region
                    objects.append(obj)
                span.annotate(objects=len(objects))
            extents_by_var[source.var] = tuple(objects)
        evaluator = NaiveEvaluator(database, extents_by_var=extents_by_var)
        with tracer.span("db-evaluate") as span:
            rows = evaluator.evaluate(query)
            span.annotate(rows=len(rows))
        stats.rows = len(rows)
        result_regions = RegionSet.empty()
        if query.is_identity_select():
            result_regions = RegionSet(
                region_of[row[0].oid]
                for row in rows
                if isinstance(row[0], ObjectValue) and row[0].oid in region_of
            )
        stats.result_regions = len(result_regions)
        return Execution(rows=rows, regions=result_regions, stats=stats)

    # -- the index-assisted join (Section 5.2) --------------------------------------------

    def _execute_join(
        self,
        plan: Plan,
        use_cache: bool = True,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
        meter: "BudgetMeter | None" = None,
        skip_malformed: bool = True,
    ) -> Execution:
        stats = ExecutionStats(strategy="index-join")
        query = plan.query
        join = plan.join_condition
        assert join is not None
        source = query.source_class
        left = self._endpoint_regions(
            source, join, side="left", stats=stats, tracer=tracer, meter=meter
        )
        right = self._endpoint_regions(
            source, join, side="right", stats=stats, tracer=tracer, meter=meter
        )
        if left is None or right is None:
            # The endpoints cannot be located exactly through the index;
            # fall back to candidate filtering over the structural narrowing.
            assert plan.optimized_expression is not None
            evaluation = self._run_indexed(plan.optimized_expression, tracer, meter=meter)
            stats.algebra.merge(evaluation.counters)
            stats.candidate_regions = len(evaluation.result)
            stats.strategy = "index-join(fallback)"
            return self._parse_filter_output(
                plan, evaluation.result, stats, exact=False, use_cache=use_cache,
                tracer=tracer, meter=meter, skip_malformed=skip_malformed,
            )
        left_regions, left_exact = left
        right_regions, right_exact = right
        sources = self._engine.instance.get(source)
        with tracer.span("join-compare") as span:
            left_texts = self._texts_by_source(sources, left_regions, stats)
            right_texts = self._texts_by_source(sources, right_regions, stats)
            qualifying = [
                region
                for region in sources
                if left_texts.get(region) and right_texts.get(region)
                and left_texts[region] & right_texts[region]
            ]
            span.annotate(
                sources=len(sources),
                qualifying=len(qualifying),
                bytes_compared=stats.join_bytes_compared,
            )
        candidates = RegionSet(qualifying)
        stats.candidate_regions = len(candidates)
        exact = left_exact and right_exact
        return self._parse_filter_output(
            plan, candidates, stats, exact=exact, use_cache=use_cache,
            tracer=tracer, meter=meter, skip_malformed=skip_malformed,
        )

    def _endpoint_regions(
        self,
        source: str,
        join: PathComparison,
        side: str,
        stats: ExecutionStats,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
        meter: "BudgetMeter | None" = None,
    ) -> tuple[RegionSet, bool] | None:
        """Locate the regions of one join side's endpoint attribute.

        Returns ``(regions, exact)`` where ``exact`` means "region text
        equals the attribute value and the path context is unambiguous"."""
        path = join.left if side == "left" else join.right
        resolved = self._translator.translate_path(source, path, word=None)
        if resolved.expression is None:
            return None
        endpoint = self._translator.endpoint_chain(source, path)
        if endpoint is None:
            return None
        expression, exact = endpoint
        evaluation = self._run_indexed(expression, tracer, side=side, meter=meter)
        stats.algebra.merge(evaluation.counters)
        return evaluation.result, exact

    def _texts_by_source(
        self, sources: RegionSet, endpoints: RegionSet, stats: ExecutionStats
    ) -> dict[Region, set[str]]:
        """Group endpoint-region texts by their enclosing source region —
        "the content of the regions is then loaded into the database"."""
        texts: dict[Region, set[str]] = defaultdict(set)
        for source_region in sources:
            for endpoint in endpoints.iter_included_in(source_region):
                content = self._engine.region_text(endpoint).strip()
                stats.join_bytes_compared += len(endpoint)
                texts[source_region].add(content)
        return dict(texts)

    # -- the baseline ----------------------------------------------------------------------

    def _execute_full_scan(
        self,
        plan: Plan,
        use_cache: bool = True,
        tracer: "Tracer | NullTracer" = NULL_TRACER,
        meter: "BudgetMeter | None" = None,
    ) -> Execution:
        stats = ExecutionStats(strategy="full-scan")
        query = plan.query
        with tracer.span("full-scan-parse") as span:
            tree = self._full_scan_parse(stats, use_cache, meter)
            span.annotate(
                bytes_parsed=stats.bytes_parsed,
                bytes_parse_avoided=stats.bytes_parse_avoided,
            )
        if meter is not None:
            meter.check_deadline()
        instantiation = InstantiationStats()
        if query.is_single_source():
            # The query trie is rooted at the source class; instantiation
            # starts at the grammar root, so anchor it (outer structure kept).
            trie = AnchoredTrie(
                anchor=query.source_class, inner=self._translator.needed_paths(query)
            )
        else:
            # Multi-variable scans build the full image (each class would
            # need its own anchor; correctness over cleverness here).
            trie = PathTrie.everything()
        spans_by_oid: dict[int, tuple[int, int]] = {}
        with tracer.span("db-instantiate") as span:
            root = self._schema.instantiate(
                tree, needed=trie, stats=instantiation, spans=spans_by_oid
            )
            stats.values_built = instantiation.values_built
            database = Database()
            database.load_value(root)
            span.annotate(values_built=stats.values_built)
        evaluator = NaiveEvaluator(database)
        with tracer.span("db-evaluate") as span:
            rows = evaluator.evaluate(query)
            span.annotate(rows=len(rows))
        stats.rows = len(rows)
        stats.candidate_regions = len(database.extent(query.source_class))
        # Map qualifying objects back to their parse regions for parity with
        # the index strategies.  Each object's span was recorded when it was
        # instantiated — no assumption that the parse-tree walk order matches
        # the extent's insertion order.
        regions: list[Region] = []
        if query.is_identity_select():
            qualifying = {
                row[0].oid for row in rows if isinstance(row[0], ObjectValue)
            }
            for oid in qualifying:
                span = spans_by_oid.get(oid)
                if span is not None:
                    regions.append(Region(span[0], span[1]))
            stats.objects_filtered_out = stats.candidate_regions - len(qualifying)
        result_regions = RegionSet(regions)
        stats.result_regions = len(result_regions)
        return Execution(rows=rows, regions=result_regions, stats=stats)

    def _full_scan_parse(
        self,
        stats: ExecutionStats,
        use_cache: bool,
        meter: "BudgetMeter | None" = None,
    ) -> ParseNode:
        """Parse the whole corpus, reusing the cached tree when allowed.

        The corpus never changes after indexing, so one tree serves every
        planner-chosen full scan.  The forced baseline (``use_cache=False``)
        always re-parses — its measurements must reflect real work.
        Concurrent queries serialize on the memo lock so the expensive parse
        happens once and a half-assigned tuple is never observed.
        """
        cache_tree = use_cache and self._cache_config.caches_full_scan_tree
        with self._full_scan_lock:
            if cache_tree and self._full_scan_tree is not None:
                tree, byte_cost = self._full_scan_tree
                stats.cache_parse_hits += 1
                stats.bytes_parse_avoided += byte_cost
                self._cache_stats.parse_hits += 1
                self._cache_stats.bytes_parse_avoided += byte_cost
                return tree
            counters = OperationCounters()
            tree = self._schema.parse(self._engine.text, counters=counters)
            stats.bytes_parsed = counters.bytes_scanned
            if meter is not None:
                meter.charge_bytes(counters.bytes_scanned)
            if cache_tree:
                stats.cache_parse_misses += 1
                self._cache_stats.parse_misses += 1
                self._full_scan_tree = (tree, counters.bytes_scanned)
            return tree


def _outputs_need_where(query: Query) -> bool:
    """Variable-using outputs need WHERE bindings even on exact plans."""
    return any(output.has_variables() for output in query.outputs)
