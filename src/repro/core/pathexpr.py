"""Extended path expressions (Section 5.3) as direct algebra helpers.

The translator already handles star and plain variables inside queries;
this module exposes the underlying tricks as a small public API:

- :func:`star_query` — build ``SELECT r FROM C r WHERE r.*X.attr = w``;
- :func:`containment_closure` — a *regular path* with transitive closure
  ("find the sections, at any nesting depth, containing w") evaluated
  "with just an inclusion expression";
- :func:`nesting_layers` — peel a self-nested region set into its nesting
  layers using ``ω`` and ``−`` (the machinery of the paper's ⊃d program);
- :func:`regions_at_depth` — the regions exactly ``n`` layers deep, the
  algebra analogue of fixed-arity variable paths ``Ai.X1...Xn.Aj``.
"""

from __future__ import annotations

from repro.algebra import ops
from repro.algebra.ast import (
    Inclusion,
    Name,
    RegionExpr,
    Select,
)
from repro.algebra.region import RegionSet
from repro.db.query import Attr, Comparison, PathExpr, Query, StarVar
from repro.index.engine import IndexEngine


def star_query(source_class: str, attribute: str, word: str, var: str = "r") -> Query:
    """``SELECT r FROM source r WHERE r.*X.attribute = "word"``."""
    path = PathExpr(var=var, steps=(StarVar("X"), Attr(attribute)))
    return Query(
        outputs=(PathExpr(var=var),),
        source_class=source_class,
        var=var,
        where=Comparison(path=path, op="=", literal=word),
    )


def containment_closure(
    engine: IndexEngine,
    ancestor: str,
    descendant: str,
    word: str | None = None,
    mode: str = "exact",
) -> RegionSet:
    """All ``ancestor`` regions containing a ``descendant`` region at any
    nesting depth — the transitive-closure path query, as one ``⊃``.

    This is the paper's point that "a traditionally expensive query (a
    closure) can be implemented much more efficiently": no fixpoint, just a
    single inclusion join.
    """
    tail: RegionExpr = Name(descendant)
    if word is not None:
        tail = Select(child=tail, word=word, mode=mode)
    return engine.evaluate(Inclusion(op=">", left=Name(ancestor), right=tail))


def nesting_layers(regions: RegionSet) -> list[RegionSet]:
    """Split a region set into nesting layers: layer 0 is the outermost
    regions, layer 1 the outermost of what remains, and so on."""
    layers: list[RegionSet] = []
    rest = regions
    while rest:
        layer = ops.outermost(rest)
        layers.append(layer)
        rest = ops.difference(rest, layer)
    return layers


def regions_at_depth(regions: RegionSet, depth: int) -> RegionSet:
    """The regions exactly ``depth`` layers deep within their own set.

    ``regions_at_depth(sections, 2)`` finds sub-sub-sections — what a query
    path ``Section.X1.X2`` (two fixed-arity variables over a self-nested
    type) denotes.
    """
    layers = nesting_layers(regions)
    if depth < 0 or depth >= len(layers):
        return RegionSet.empty()
    return layers[depth]


def max_nesting_depth(regions: RegionSet) -> int:
    """How deeply the set nests (0 for flat, -1 for empty)."""
    return len(nesting_layers(regions)) - 1
