"""The optimization algorithm of Section 3.2 (Prop. 3.5, Theorem 3.6).

Given an inclusion expression and a RIG, compute the *most efficient
version*: the unique equivalent expression obtained by

1. replacing ``⊃d`` with ``⊃`` wherever Proposition 3.5(a) licenses it, and
2. repeatedly shortening ``Ri ⊃ Rj ⊃ Rk`` to ``Ri ⊃ Rk`` wherever
   Proposition 3.5(b) licenses it, until a fixpoint.

Theorem 3.6 shows the rewrite system is finite Church–Rosser, so the result
does not depend on rewrite order; the property tests exercise this by
applying rule (b) in random orders.

Rule preconditions, as implemented (see DESIGN.md for the two documented
soundness refinements over the paper's statement — both vacuous on the
paper's acyclic, coincidence-free examples):

(a) ``Ri ⊃d Rj -> Ri ⊃ Rj`` when
    - no node ``t`` satisfies ``Ri →⁺ t →⁺ Rj``  (the paper's "the edge is
      the only path from Ri to Rj", in walk semantics), or
    - ``Rj`` is the chain's rightmost region, carries **no selection**, and
      every walk from ``Ri`` to ``Rj`` starts with the edge ``(Ri, Rj)``.
(b) ``Ri ⊃ Rj ⊃ Rk -> Ri ⊃ Rk`` when every walk from ``Ri`` to ``Rk``
    passes through ``Rj``, the dropped ``Rj`` carries no selection, and
    ``Ri``/``Rk`` are not coincidence-related.

The mirrored rules handle projection chains (``⊂``/``⊂d``), with the
container/containee roles swapped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.ast import (
    DIRECTLY_INCLUDED,
    DIRECTLY_INCLUDING,
    INCLUDED,
    INCLUDING,
    Inclusion,
    Innermost,
    Name,
    Outermost,
    RegionExpr,
    Select,
    SetOp,
)
from repro.core.chains import ChainView, chain_to_expression, extract_chain
from repro.obs.trace import NULL_TRACER, NullTracer, Tracer
from repro.rig.graph import RegionInclusionGraph
from repro.rig.paths import (
    coincident_related,
    every_path_ends_with_edge,
    every_path_starts_with_edge,
    every_path_through,
    has_intermediate,
)


@dataclass
class OptimizationTrace:
    """A record of the rewrites applied, for explain output and tests."""

    direct_to_simple: list[tuple[str, str]] = field(default_factory=list)
    shortened: list[tuple[str, str, str]] = field(default_factory=list)

    @property
    def rewrite_count(self) -> int:
        return len(self.direct_to_simple) + len(self.shortened)

    def describe(self) -> str:
        lines = []
        for left, right in self.direct_to_simple:
            lines.append(f"direct inclusion relaxed: {left} ⊃d {right}  ->  {left} ⊃ {right}")
        for left, via, right in self.shortened:
            lines.append(f"chain shortened: {left} ⊃ {via} ⊃ {right}  ->  {left} ⊃ {right}")
        return "\n".join(lines) if lines else "no rewrites applicable"


def optimize(
    expression: RegionExpr,
    graph: RegionInclusionGraph,
    trace: OptimizationTrace | None = None,
    tracer: "Tracer | NullTracer" = NULL_TRACER,
) -> RegionExpr:
    """Compute the most efficient version of ``expression`` w.r.t. ``graph``.

    Non-chain structure (set operations, selections over chains, ι/ω) is
    preserved; every maximal inclusion chain inside it is optimized.
    ``tracer`` (optional) records one span per rewrite-rule step.
    """
    if isinstance(expression, Name):
        return expression
    if isinstance(expression, Select):
        # A selection over a bare name is part of a chain link; anything
        # else is optimized recursively.
        optimized_child = optimize(expression.child, graph, trace, tracer)
        return Select(child=optimized_child, word=expression.word, mode=expression.mode)
    if isinstance(expression, Innermost):
        return Innermost(optimize(expression.child, graph, trace, tracer))
    if isinstance(expression, Outermost):
        return Outermost(optimize(expression.child, graph, trace, tracer))
    if isinstance(expression, SetOp):
        return SetOp(
            expression.kind,
            optimize(expression.left, graph, trace, tracer),
            optimize(expression.right, graph, trace, tracer),
        )
    if isinstance(expression, Inclusion):
        chain = extract_chain(expression)
        if chain is None:
            return Inclusion(
                expression.op,
                optimize(expression.left, graph, trace, tracer),
                optimize(expression.right, graph, trace, tracer),
            )
        return chain_to_expression(_optimize_chain(chain, graph, trace, tracer))
    return expression


# -- the two steps on a chain ---------------------------------------------------


def _optimize_chain(
    chain: ChainView,
    graph: RegionInclusionGraph,
    trace: OptimizationTrace | None,
    tracer: "Tracer | NullTracer" = NULL_TRACER,
) -> ChainView:
    with tracer.span("rule:relax-direct") as span:
        before = len(trace.direct_to_simple) if trace is not None else 0
        chain = _step_relax_direct(chain, graph, trace)
        if trace is not None:
            span.annotate(rewrites=len(trace.direct_to_simple) - before)
    with tracer.span("rule:shorten") as span:
        before = len(trace.shortened) if trace is not None else 0
        chain = _step_shorten(chain, graph, trace)
        if trace is not None:
            span.annotate(rewrites=len(trace.shortened) - before)
    return chain


def _container_containee(chain: ChainView, index: int) -> tuple[str, str]:
    """The (container, containee) names of the pair at ``index``."""
    left = chain.links[index].region
    right = chain.links[index + 1].region
    if chain.forward:
        return left, right
    return right, left


def _step_relax_direct(
    chain: ChainView, graph: RegionInclusionGraph, trace: OptimizationTrace | None
) -> ChainView:
    """Step 1: apply Proposition 3.5(a) to every ``⊃d``/``⊂d``."""
    simple_op = INCLUDING if chain.forward else INCLUDED
    direct_op = DIRECTLY_INCLUDING if chain.forward else DIRECTLY_INCLUDED
    for index, op in enumerate(chain.ops):
        if op != direct_op:
            continue
        container, containee = _container_containee(chain, index)
        if _relax_allowed(chain, graph, index, container, containee):
            chain = chain.with_op(index, simple_op)
            if trace is not None:
                trace.direct_to_simple.append((container, containee))
    return chain


def _relax_allowed(
    chain: ChainView,
    graph: RegionInclusionGraph,
    index: int,
    container: str,
    containee: str,
) -> bool:
    # Disjunct 1: nothing can ever sit between the pair.
    if not has_intermediate(graph, container, containee):
        return True
    # Disjunct 2: only at the chain's non-container end, selection-free.
    is_last_pair = index == len(chain.ops) - 1
    if not is_last_pair:
        return False
    if chain.forward:
        rightmost = chain.links[-1]
        if rightmost.has_select:
            return False
        return every_path_starts_with_edge(graph, container, containee)
    # Backward (projection) chain: the rightmost link is the top container.
    rightmost = chain.links[-1]
    if rightmost.has_select:
        return False
    return every_path_ends_with_edge(graph, container, containee)


def _step_shorten(
    chain: ChainView, graph: RegionInclusionGraph, trace: OptimizationTrace | None
) -> ChainView:
    """Step 2: apply Proposition 3.5(b) until no triple can be shortened."""
    simple_op = INCLUDING if chain.forward else INCLUDED
    changed = True
    while changed:
        changed = False
        for index in range(len(chain.ops) - 1):
            if chain.ops[index] != simple_op or chain.ops[index + 1] != simple_op:
                continue
            middle = chain.links[index + 1]
            if middle.has_select:
                continue
            if chain.forward:
                top, via, bottom = (
                    chain.links[index].region,
                    middle.region,
                    chain.links[index + 2].region,
                )
            else:
                top, via, bottom = (
                    chain.links[index + 2].region,
                    middle.region,
                    chain.links[index].region,
                )
            if not every_path_through(graph, top, bottom, via):
                continue
            if coincident_related(graph, top, bottom):
                # A coincident pair can realise top ⊇ bottom with no room
                # for a `via` region between; keep the middle test.
                continue
            chain = chain.without_link(index + 1)
            if trace is not None:
                trace.shortened.append((top, via, bottom))
            changed = True
            break
    return chain
