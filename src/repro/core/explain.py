"""Human-readable plan explanations."""

from __future__ import annotations

from repro.core.cost import static_cost
from repro.core.planner import Plan


def explain_plan(plan: Plan, cache: str | None = None) -> str:
    """Render a plan the way EXPLAIN would.

    ``cache`` is an optional one-line description of the engine's cache
    state (configuration + lifetime hits), appended when provided.
    """
    lines = [f"query:     {plan.query.render()}", f"strategy:  {plan.strategy}"]
    if plan.raw_expression is not None:
        lines.append(f"translated: {plan.raw_expression}")
        lines.append(f"            (static cost {static_cost(plan.raw_expression)})")
    if plan.optimized_expression is not None:
        lines.append(f"optimized:  {plan.optimized_expression}")
        lines.append(
            f"            (static cost {static_cost(plan.optimized_expression)})"
        )
    if plan.trace.rewrite_count:
        for line in plan.trace.describe().splitlines():
            lines.append(f"  rewrite: {line}")
    for var, expression in plan.per_variable.items():
        if expression is None:
            lines.append(f"narrow {var}: (whole extent)")
        else:
            lines.append(f"narrow {var}: {expression}")
    lines.append(f"exact:     {plan.exact}")
    if plan.join_condition is not None:
        lines.append("join:      index-located attribute contents compared")
    for note in plan.notes:
        lines.append(f"note:      {note}")
    if cache is not None:
        lines.append(f"cache:     {cache}")
    return "\n".join(lines)
