"""Static cost model for region expressions.

Definition 3.4 orders expressions by rewriting ("e2 was obtained from e1 by
replacing ..."), so the optimizer itself never needs numeric costs.  This
model exists for *explain* output and for asserting, in tests, that every
rewrite strictly decreases cost: fewer operations are cheaper, and a direct
inclusion is far more expensive than a simple one (Section 3.1's layered
program runs one ``ω``/``⊃``/``−`` round per nesting layer).
"""

from __future__ import annotations

from repro.algebra.ast import (
    DIRECTLY_INCLUDED,
    DIRECTLY_INCLUDING,
    Inclusion,
    Innermost,
    Name,
    Outermost,
    RegionExpr,
    Select,
    SetOp,
)

#: Relative operator weights (arbitrary units; only the ordering matters).
WEIGHTS = {
    "name": 1,
    "select": 3,
    "set_op": 2,
    "extremal": 4,
    "simple_inclusion": 5,
    "direct_inclusion": 40,
}


def static_cost(expression: RegionExpr) -> int:
    """The summed operator weight of an expression."""
    total = 0
    for node in expression.walk():
        if isinstance(node, Name):
            total += WEIGHTS["name"]
        elif isinstance(node, Select):
            total += WEIGHTS["select"]
        elif isinstance(node, SetOp):
            total += WEIGHTS["set_op"]
        elif isinstance(node, (Innermost, Outermost)):
            total += WEIGHTS["extremal"]
        elif isinstance(node, Inclusion):
            if node.op in (DIRECTLY_INCLUDING, DIRECTLY_INCLUDED):
                total += WEIGHTS["direct_inclusion"]
            else:
                total += WEIGHTS["simple_inclusion"]
    return total
