"""Static cost model for region expressions.

Definition 3.4 orders expressions by rewriting ("e2 was obtained from e1 by
replacing ..."), so the optimizer itself never needs numeric costs.  This
model exists for *explain* output and for asserting, in tests, that every
rewrite strictly decreases cost: fewer operations are cheaper, and a direct
inclusion is far more expensive than a simple one (Section 3.1's layered
program runs one ``ω``/``⊃``/``−`` round per nesting layer).
"""

from __future__ import annotations

from repro.algebra.ast import (
    DIRECTLY_INCLUDED,
    DIRECTLY_INCLUDING,
    Inclusion,
    Innermost,
    Name,
    Outermost,
    RegionExpr,
    Select,
    SetOp,
)

#: Relative operator weights (arbitrary units; only the ordering matters).
WEIGHTS = {
    "name": 1,
    "select": 3,
    "set_op": 2,
    "extremal": 4,
    "simple_inclusion": 5,
    "direct_inclusion": 40,
}


def node_weight(node: RegionExpr) -> int:
    """The weight of one operator node (children excluded)."""
    if isinstance(node, Name):
        return WEIGHTS["name"]
    if isinstance(node, Select):
        return WEIGHTS["select"]
    if isinstance(node, SetOp):
        return WEIGHTS["set_op"]
    if isinstance(node, (Innermost, Outermost)):
        return WEIGHTS["extremal"]
    if isinstance(node, Inclusion):
        if node.op in (DIRECTLY_INCLUDING, DIRECTLY_INCLUDED):
            return WEIGHTS["direct_inclusion"]
        return WEIGHTS["simple_inclusion"]
    return 0


def static_cost(expression: RegionExpr) -> int:
    """The summed operator weight of an expression."""
    return sum(node_weight(node) for node in expression.walk())
