"""A bounded worker pool with an explicit queue-depth cap.

``concurrent.futures.ThreadPoolExecutor`` queues without bound — exactly
wrong for a server under admission control, where "full" must be a fast
structured rejection, not a silently growing backlog.  This pool owns a
``queue.Queue(maxsize=...)`` and N long-lived worker threads;
:meth:`WorkerPool.submit` never blocks: a full queue raises
:class:`~repro.errors.ServerOverloadedError` immediately.

(The :class:`~repro.server.admission.AdmissionController` normally rejects
before the queue can fill; the pool's own cap is the backstop that makes
the bound true even if a caller bypasses admission.)

Shutdown comes in two flavors: :meth:`WorkerPool.shutdown` (legacy —
drain everything already queued, then stop) and :meth:`WorkerPool.drain`
(graceful — finish what is *executing*, fail what is merely *queued* with
a typed :class:`~repro.errors.ServerDrainingError`, all bounded by a
drain deadline).  The server's SIGTERM path uses ``drain``: active
queries complete, queued-but-unstarted ones get structured 503s.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from time import perf_counter
from typing import Any, Callable

from repro.errors import ServerDrainingError, ServerOverloadedError

#: Sentinel telling a worker thread to exit.
_STOP = object()


class WorkerPool:
    """N worker threads draining one bounded queue of callables.

    ``fault_injector`` (a zero-argument callable, e.g.
    :class:`~repro.resilience.faults.WorkerStall`) runs at the start of
    every execution — *after* the item left the queue, so an injected
    stall consumes the request's admission-minted deadline exactly like a
    real scheduling delay would.
    """

    def __init__(
        self,
        workers: int,
        queue_depth: int,
        name: str = "repro-server",
        fault_injector: Callable[[], None] | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth!r}")
        self.workers = workers
        self.queue_depth = queue_depth
        self.fault_injector = fault_injector
        # Executing work occupies a worker, not a queue slot, so the queue
        # holds at most queue_depth waiting items plus one per worker in
        # the instant between get() and execution; size accordingly.
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=workers + queue_depth)
        self._shutdown = False
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._run, name=f"{name}-worker-{number}", daemon=True
            )
            for number in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, fn: Callable[[], Any]) -> "Future[Any]":
        """Enqueue ``fn`` for execution; returns its future.  Raises
        :class:`~repro.errors.ServerOverloadedError` when the queue is
        full and after shutdown."""
        with self._lock:
            if self._shutdown:
                raise ServerOverloadedError("server is shutting down")
            future: "Future[Any]" = Future()
            try:
                self._queue.put_nowait((future, fn))
            except queue.Full:
                raise ServerOverloadedError(
                    f"worker queue full ({self.workers} worker(s), "
                    f"queue depth {self.queue_depth})"
                ) from None
        return future

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            future, fn = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                if self.fault_injector is not None:
                    self.fault_injector()
                future.set_result(fn())
            except BaseException as error:  # noqa: BLE001 — future boundary
                future.set_exception(error)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; drain what was already queued."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        for _ in self._threads:
            self._queue.put(_STOP)
        if wait:
            for thread in self._threads:
                thread.join(timeout=10.0)

    def drain(self, deadline_s: float = 5.0) -> bool:
        """Graceful shutdown: stop accepting, fail queued-but-unstarted
        work with :class:`~repro.errors.ServerDrainingError`, and give
        work already *executing* up to ``deadline_s`` to finish.

        Returns ``True`` when every worker exited within the deadline
        (``False`` means an in-flight request outlived the drain window —
        its worker thread is a daemon, so the process can still exit).
        Idempotent; safe to call after :meth:`shutdown`.
        """
        with self._lock:
            self._shutdown = True
        # Flush the backlog: anything still queued never started, so a
        # typed rejection is safe — the client can retry with no risk of
        # double execution.  (A worker racing us to an item simply runs
        # it; that item counts as in-flight.)
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _STOP:
                continue
            future, _fn = item
            if future.set_running_or_notify_cancel():
                future.set_exception(
                    ServerDrainingError(
                        "request was queued but not started before shutdown"
                    )
                )
        for _ in self._threads:
            self._queue.put(_STOP)
        end = perf_counter() + max(0.0, deadline_s)
        for thread in self._threads:
            thread.join(timeout=max(0.0, end - perf_counter()))
        return not any(thread.is_alive() for thread in self._threads)
