"""A bounded worker pool with an explicit queue-depth cap.

``concurrent.futures.ThreadPoolExecutor`` queues without bound — exactly
wrong for a server under admission control, where "full" must be a fast
structured rejection, not a silently growing backlog.  This pool owns a
``queue.Queue(maxsize=...)`` and N long-lived worker threads;
:meth:`WorkerPool.submit` never blocks: a full queue raises
:class:`~repro.errors.ServerOverloadedError` immediately.

(The :class:`~repro.server.admission.AdmissionController` normally rejects
before the queue can fill; the pool's own cap is the backstop that makes
the bound true even if a caller bypasses admission.)
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from typing import Any, Callable

from repro.errors import ServerOverloadedError

#: Sentinel telling a worker thread to exit.
_STOP = object()


class WorkerPool:
    """N worker threads draining one bounded queue of callables."""

    def __init__(
        self, workers: int, queue_depth: int, name: str = "repro-server"
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth!r}")
        self.workers = workers
        self.queue_depth = queue_depth
        # Executing work occupies a worker, not a queue slot, so the queue
        # holds at most queue_depth waiting items plus one per worker in
        # the instant between get() and execution; size accordingly.
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=workers + queue_depth)
        self._shutdown = False
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(
                target=self._run, name=f"{name}-worker-{number}", daemon=True
            )
            for number in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, fn: Callable[[], Any]) -> "Future[Any]":
        """Enqueue ``fn`` for execution; returns its future.  Raises
        :class:`~repro.errors.ServerOverloadedError` when the queue is
        full and after shutdown."""
        with self._lock:
            if self._shutdown:
                raise ServerOverloadedError("server is shutting down")
            future: "Future[Any]" = Future()
            try:
                self._queue.put_nowait((future, fn))
            except queue.Full:
                raise ServerOverloadedError(
                    f"worker queue full ({self.workers} worker(s), "
                    f"queue depth {self.queue_depth})"
                ) from None
        return future

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            future, fn = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(fn())
            except BaseException as error:  # noqa: BLE001 — future boundary
                future.set_exception(error)

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; drain what was already queued."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        for _ in self._threads:
            self._queue.put(_STOP)
        if wait:
            for thread in self._threads:
                thread.join(timeout=10.0)
