"""Thread-safe server-lifetime counters and recent-request spans.

Every handled request closes one ``server:request``
:class:`~repro.obs.trace.Span` (endpoint, status, duration); the
:class:`ServerStats` aggregate rolls those into per-endpoint counters and
keeps a bounded ring of the most recent span dicts, all surfaced by
``GET /stats``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any

from repro.obs.trace import Span

#: How many recent engine-request durations feed the queue-drain-rate
#: estimate behind ``Retry-After`` (429/503 back-off hints).
DRAIN_WINDOW = 64

#: Retry-After fallback when no engine request has completed yet — the
#: server is cold, so any small positive hint beats no hint.
COLD_RETRY_AFTER_S = 1.0


class ServerStats:
    """Lifetime request tallies for one server instance."""

    def __init__(self, recent: int = 32) -> None:
        self._lock = threading.Lock()
        self._by_endpoint: dict[str, dict[str, Any]] = {}
        self._by_status: dict[int, int] = {}
        self._recent: "deque[dict[str, Any]]" = deque(maxlen=max(0, recent))
        self._durations: "deque[float]" = deque(maxlen=DRAIN_WINDOW)
        self._requests_total = 0
        self._errors_total = 0

    def record(self, span: Span, status: int) -> None:
        """Fold one closed ``server:request`` span into the tallies."""
        endpoint = str(span.metrics.get("endpoint", "?"))
        with self._lock:
            self._requests_total += 1
            if status < 400 and str(span.metrics.get("method", "")) == "POST":
                # Completed engine work: its duration feeds the
                # queue-drain-rate estimate behind Retry-After.
                self._durations.append(span.duration)
            if status >= 400:
                self._errors_total += 1
            self._by_status[status] = self._by_status.get(status, 0) + 1
            bucket = self._by_endpoint.setdefault(
                endpoint, {"requests": 0, "errors": 0, "seconds_total": 0.0}
            )
            bucket["requests"] += 1
            if status >= 400:
                bucket["errors"] += 1
            bucket["seconds_total"] += span.duration
            if self._recent.maxlen:
                self._recent.append(span.to_dict())

    def retry_after_s(self, pending: int, workers: int = 1) -> float:
        """How long an overload-rejected client should wait before
        retrying, from the recent queue-drain rate: ``pending`` requests
        ahead of it drain in waves of ``workers`` at the recent mean
        engine-request duration.  Clamped to [0.1s, 60s]; a cold server
        (no completions yet) answers :data:`COLD_RETRY_AFTER_S`."""
        with self._lock:
            durations = list(self._durations)
        if not durations:
            return COLD_RETRY_AFTER_S
        mean = sum(durations) / len(durations)
        waves = max(1, -(-max(0, pending) // max(1, workers)))  # ceil
        return round(min(60.0, max(0.1, mean * waves)), 3)

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            return {
                "requests_total": self._requests_total,
                "errors_total": self._errors_total,
                "by_status": {
                    str(status): count
                    for status, count in sorted(self._by_status.items())
                },
                "by_endpoint": {
                    endpoint: dict(bucket)
                    for endpoint, bucket in sorted(self._by_endpoint.items())
                },
                "recent_requests": list(self._recent),
            }
