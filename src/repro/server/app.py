"""The serving core, independent of any transport.

:class:`QueryServerApp` routes ``(method, path, body)`` to the backend
through admission control and the bounded worker pool, and renders every
outcome — success or failure — as one JSON envelope family::

    {"ok": true,  "kind": "query" | "explain" | "analyze" | "append" | "stats" | "health", ...}
    {"ok": false, "kind": "error", "status": 429,
     "error": {"type": "ServerOverloadedError", "code": "server-overloaded",
               "message": "...", "detail": {...}}}

Keeping the app free of sockets makes the whole serving contract testable
in-process (``tests/server/test_app.py``); :mod:`repro.server.http` is a
thin HTTP skin over :meth:`QueryServerApp.handle`.

Every handled request runs under a ``server:request``
:class:`~repro.obs.trace.Span` folded into :class:`ServerStats`
(per-endpoint counters plus a recent-request ring, all on ``GET /stats``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from time import perf_counter
from typing import Any, Mapping

from repro.api import QueryBackend, QueryRequest
from repro.errors import (
    BudgetExceededError,
    DuplicateRequestError,
    JournalCorruptError,
    PaginationError,
    ParseError,
    QueryError,
    ReproError,
    ServerDrainingError,
    ServerOverloadedError,
    ShardFailedError,
    WriteQuorumError,
)
from repro.obs.trace import Span
from repro.resilience.budget import ResourceBudget, combine_budgets
from repro.server.admission import AdmissionController
from repro.server.pool import WorkerPool
from repro.server.stats import ServerStats

#: Endpoints that cost engine work and therefore pass admission control.
ENGINE_ENDPOINTS = {"/query", "/explain", "/analyze"}

#: Ingestion endpoint: also admission-controlled, but takes a record body
#: instead of a query request and requires a live (appendable) backend.
APPEND_ENDPOINT = "/append"


class _MethodNotAllowed(Exception):
    """Internal: wrong HTTP method for a known endpoint (→ 405)."""


@dataclass(frozen=True)
class ServerConfig:
    """Serving knobs.

    Attributes
    ----------
    host / port:
        Bind address (``port=0`` picks a free port — handy in tests).
    workers / queue_depth:
        Bounded worker pool: at most ``workers`` requests executing and
        ``queue_depth`` waiting; anything past that is rejected with a
        structured 429.
    budget:
        Server-level :class:`~repro.resilience.ResourceBudget`; per-request
        quotas are minted from it (regions/bytes split across workers,
        deadline per request).
    per_request_budget:
        Explicit per-request quota, overriding the minted split.
    default_page_size / max_page_size:
        Pagination defaults; a request asking for more than
        ``max_page_size`` rows per page is rejected.
    recent_spans:
        How many recent ``server:request`` spans ``GET /stats`` retains.
    drain_deadline_s:
        How long a graceful shutdown waits for in-flight requests to
        finish before detaching their (daemon) workers.
    """

    host: str = "127.0.0.1"
    port: int = 8080
    workers: int = 4
    queue_depth: int = 16
    budget: ResourceBudget | None = None
    per_request_budget: ResourceBudget | None = None
    default_page_size: int | None = None
    max_page_size: int = 10_000
    recent_spans: int = 32
    drain_deadline_s: float = 5.0

    def __post_init__(self) -> None:
        if self.drain_deadline_s < 0:
            raise ValueError(
                f"drain_deadline_s must be non-negative, got {self.drain_deadline_s!r}"
            )
        if self.max_page_size < 1:
            raise ValueError(
                f"max_page_size must be >= 1, got {self.max_page_size!r}"
            )
        if (
            self.default_page_size is not None
            and not 1 <= self.default_page_size <= self.max_page_size
        ):
            raise ValueError(
                f"default_page_size must be in [1, {self.max_page_size}], "
                f"got {self.default_page_size!r}"
            )


#: Stable machine-matchable error codes for the wire (exception type →
#: kebab-case code); anything unmapped falls back to "internal-error".
ERROR_CODES = {
    "ServerOverloadedError": "server-overloaded",
    "ServerDrainingError": "server-draining",
    "BudgetExceededError": "budget-exceeded",
    "PaginationError": "bad-request",
    "QuerySyntaxError": "query-syntax",
    "TranslationError": "query-translation",
    "PlanningError": "query-planning",
    "QueryError": "query-error",
    "ShardFailedError": "shard-failed",
    "ParseError": "bad-record",
    "JournalCorruptError": "journal-corrupt",
    "DuplicateRequestError": "duplicate-request",
    "WriteQuorumError": "write-quorum",
}


class QueryServerApp:
    """Route requests to a :class:`~repro.api.QueryBackend` and envelope
    the answers.  One instance serves many concurrent callers: the
    backend's caches are thread-safe and session-shared, so every request
    warms the next one."""

    def __init__(
        self,
        backend: QueryBackend,
        config: ServerConfig | None = None,
        scrubber: Any | None = None,
    ) -> None:
        self.backend = backend
        self.config = config if config is not None else ServerConfig()
        #: Optional server-owned :class:`~repro.shard.ScrubDaemon`: started
        #: by the caller (``repro serve --scrub-interval-s``), stopped on
        #: :meth:`close`, surfaced on ``GET /stats``.
        self.scrubber = scrubber
        self.admission = AdmissionController(
            workers=self.config.workers,
            queue_depth=self.config.queue_depth,
            server_budget=self.config.budget,
            per_request_budget=self.config.per_request_budget,
        )
        self.pool = WorkerPool(
            workers=self.config.workers, queue_depth=self.config.queue_depth
        )
        self.stats = ServerStats(recent=self.config.recent_spans)
        self.started_at = perf_counter()
        self._closed = threading.Event()
        self._draining = threading.Event()

    # -- lifecycle ---------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def start_draining(self) -> None:
        """Stop admitting new engine work: from here on, ``/query`` /
        ``/explain`` / ``/analyze`` answer a structured 503 with
        ``Retry-After`` while already-admitted requests keep running."""
        self._draining.set()

    def drain(self, deadline_s: float | None = None) -> bool:
        """Graceful shutdown: stop admitting, let executing requests
        finish within the drain deadline, fail queued-but-unstarted ones
        with typed 503s.  Returns ``True`` when everything in flight
        completed in time.  Idempotent."""
        deadline = (
            self.config.drain_deadline_s if deadline_s is None else deadline_s
        )
        self._draining.set()
        drained = self.pool.drain(deadline)
        self._closed.set()
        return drained

    def close(self) -> None:
        """Stop the worker pool and the background scrubber (idempotent;
        graceful — same as :meth:`drain` with the configured deadline)."""
        if self.scrubber is not None:
            self.scrubber.stop()
        if not self._closed.is_set():
            self.drain()

    @property
    def uptime_s(self) -> float:
        return perf_counter() - self.started_at

    # -- dispatch ----------------------------------------------------------------

    def handle(
        self, method: str, path: str, body: Mapping[str, Any] | None = None
    ) -> tuple[int, dict[str, Any]]:
        """One request → ``(http_status, envelope_dict)``.  Never raises:
        every failure becomes a structured error envelope."""
        span = Span("server:request", started_at=perf_counter())
        try:
            status, payload = self._route(method, path, body)
        except Exception as error:  # noqa: BLE001 — the envelope boundary
            status, payload = self._error_envelope(error)
        span.ended_at = perf_counter()
        span.annotate(endpoint=path, method=method, status=status)
        self.stats.record(span, status)
        return status, payload

    def _route(
        self, method: str, path: str, body: Mapping[str, Any] | None
    ) -> tuple[int, dict[str, Any]]:
        path = path.rstrip("/") or "/"
        if path == "/healthz":
            self._require(method, "GET", path)
            return 200, self._health_envelope()
        if path == "/stats":
            self._require(method, "GET", path)
            return 200, self._stats_envelope()
        if path in ENGINE_ENDPOINTS:
            self._require(method, "POST", path)
            return 200, self._engine_envelope(path, body)
        if path == APPEND_ENDPOINT:
            self._require(method, "POST", path)
            return self._append_envelope(body)
        return self._plain_error(404, "not-found", f"no such endpoint: {path}")

    def _require(self, method: str, expected: str, path: str) -> None:
        if method != expected:
            raise _MethodNotAllowed(f"{path} requires {expected}, got {method}")

    # -- endpoint bodies ---------------------------------------------------------

    def _health_envelope(self) -> dict[str, Any]:
        import repro

        health = getattr(self.backend, "replica_health", None)
        replicas = health() if callable(health) else None
        return {
            "ok": True,
            "kind": "health",
            "status": "draining" if self.draining else "ok",
            "uptime_s": self.uptime_s,
            "backend": type(self.backend).__name__,
            "version": repro.__version__,
            "replicas": replicas,
        }

    def _stats_envelope(self) -> dict[str, Any]:
        server: dict[str, Any] = {
            **self.stats.to_dict(),
            "admission": self.admission.snapshot(),
            "uptime_s": self.uptime_s,
        }
        if self.scrubber is not None:
            server["scrub"] = self.scrubber.snapshot()
        return {
            "ok": True,
            "kind": "stats",
            "server": server,
            "engine": self.backend.stats().to_dict(),
        }

    def _build_request(self, body: Mapping[str, Any] | None) -> QueryRequest:
        if body is None:
            raise PaginationError("request needs a JSON object body")
        request = QueryRequest.from_dict(body)
        page_size = request.page_size
        if page_size is None and request.cursor is None:
            page_size = self.config.default_page_size
        if page_size is not None and page_size > self.config.max_page_size:
            raise PaginationError(
                f"page_size {page_size} exceeds maximum "
                f"{self.config.max_page_size}"
            )
        if page_size != request.page_size:
            request = replace(request, page_size=page_size)
        return request

    def _engine_envelope(
        self, endpoint: str, body: Mapping[str, Any] | None
    ) -> dict[str, Any]:
        request = self._build_request(body)
        if self.draining:
            raise ServerDrainingError(
                "shutting down; not admitting new requests",
                retry_after_s=self._retry_after_s(),
            )
        ticket = self.admission.admit()
        # The effective budget is combined — and its absolute end-to-end
        # deadline minted — HERE, at admission, before the request ever
        # touches the worker queue: time spent waiting for a worker
        # consumes the deadline, it does not re-arm it.
        budget = combine_budgets(request.budget, ticket.budget)
        if budget is not None:
            budget = budget.started()
        guarded = replace(request, budget=budget)
        try:
            future = self.pool.submit(lambda: self._execute(endpoint, guarded))
        except ServerOverloadedError:
            ticket.release()
            raise
        try:
            return future.result()
        finally:
            ticket.release()

    def _append_envelope(
        self, body: Mapping[str, Any] | None
    ) -> tuple[int, dict[str, Any]]:
        """``POST /append``: durably ingest one record through a live
        backend.  Admission-controlled like the engine endpoints — an
        overloaded or draining server rejects appends the same way — but
        the body is ``{"record": "..."}`` rather than a query request."""
        if not callable(getattr(self.backend, "append", None)):
            return self._plain_error(
                400,
                "append-unsupported",
                f"backend {type(self.backend).__name__} does not support "
                "live appends; serve a live engine to enable /append",
            )
        if body is None or not isinstance(body.get("record"), str):
            return self._plain_error(
                400, "bad-request", 'append needs a JSON body {"record": "..."}'
            )
        record = body["record"]
        request_id = body.get("request_id")
        if request_id is not None and (
            not isinstance(request_id, str) or not request_id
        ):
            return self._plain_error(
                400, "bad-request", "request_id must be a non-empty string"
            )
        if self.draining:
            raise ServerDrainingError(
                "shutting down; not admitting new requests",
                retry_after_s=self._retry_after_s(),
            )
        ticket = self.admission.admit()
        try:
            future = self.pool.submit(
                lambda: self._execute_append(record, request_id)
            )
        except ServerOverloadedError:
            ticket.release()
            raise
        try:
            return 200, future.result()
        finally:
            ticket.release()

    def _execute_append(
        self, record: str, request_id: str | None = None
    ) -> dict[str, Any]:
        append_record = getattr(self.backend, "append_record", None)
        if callable(append_record):
            ack = append_record(record, request_id=request_id)
            seq, deduped = ack["seq"], bool(ack.get("deduped"))
        else:
            seq, deduped = self.backend.append(record), False
        envelope: dict[str, Any] = {
            "ok": True,
            "kind": "append",
            "seq": seq,
            "deduped": deduped,
        }
        if request_id is not None:
            envelope["request_id"] = request_id
        status = getattr(self.backend, "status", None)
        if callable(status):
            snapshot = status()
            envelope["shard"] = snapshot.get("tail")
            envelope["pending"] = snapshot.get("pending_records")
        return envelope

    def _execute(self, endpoint: str, request: QueryRequest) -> dict[str, Any]:
        if endpoint == "/query":
            response = self.backend.query(request)
            return {"ok": True, "kind": "query", **response.to_dict()}
        if endpoint == "/explain":
            response = self.backend.explain(request)
            return {"ok": True, "kind": "explain", **response.to_dict()}
        # /analyze: instrumented re-execution; the quota still applies to
        # the primary execution via the request budget.
        response = self.backend.analyze(request)
        return {"ok": True, "kind": "analyze", "analysis": response.to_dict()}

    # -- errors ------------------------------------------------------------------

    def _retry_after_s(self) -> float:
        """The back-off hint for a rejected client, from the recent
        queue-drain rate and the load currently ahead of it."""
        pending = self.admission.snapshot()["in_flight"]
        return self.stats.retry_after_s(pending, workers=self.config.workers)

    def _plain_error(
        self, status: int, code: str, message: str
    ) -> tuple[int, dict[str, Any]]:
        return status, {
            "ok": False,
            "kind": "error",
            "status": status,
            "error": {"type": "HTTPError", "code": code, "message": message, "detail": {}},
        }

    def _error_envelope(self, error: Exception) -> tuple[int, dict[str, Any]]:
        if isinstance(error, _MethodNotAllowed):
            return self._plain_error(405, "method-not-allowed", str(error))
        name = type(error).__name__
        detail: dict[str, Any] = {}
        if isinstance(error, ServerOverloadedError):
            status = 429
            retry_after = self._retry_after_s()
            detail = {
                "admission": {**error.snapshot, "retry_after_s": retry_after},
                "retry_after_s": retry_after,
            }
        elif isinstance(error, ServerDrainingError):
            status = 503
            retry_after = (
                error.retry_after_s
                if error.retry_after_s is not None
                else self._retry_after_s()
            )
            detail = {"retry_after_s": retry_after}
        elif isinstance(error, BudgetExceededError):
            status = 429
            detail = {
                "resource": error.resource,
                "limit": error.limit,
                "spent": error.spent,
                "partial": dict(error.partial),
            }
        elif isinstance(error, ShardFailedError):
            status = 503
            detail = {"shard": error.shard, "attempts": error.attempts}
        elif isinstance(error, WriteQuorumError):
            # The append may still be durable on the journals that acked;
            # retry with the same request_id to find out safely.
            status = 503
            detail = {
                "shard": error.shard,
                "acked": error.acked,
                "quorum": error.quorum,
                "replicas": error.replicas,
            }
        elif isinstance(error, DuplicateRequestError):
            status = 409
            detail = {"request_id": error.request_id, "seq": error.seq}
        elif isinstance(error, QueryError):
            # Includes PaginationError: the client's request is at fault.
            status = 400
        elif isinstance(error, ParseError):
            # A record rejected at /append: the client's payload is at fault.
            status = 400
            detail = {"position": error.position, "symbol": error.symbol}
        elif isinstance(error, JournalCorruptError):
            status = 500
            detail = {"path": error.path, "reason": error.reason, "offset": error.offset}
        elif isinstance(error, ReproError):
            status = 500
        else:
            status = 500
        return status, {
            "ok": False,
            "kind": "error",
            "status": status,
            "error": {
                "type": name,
                "code": ERROR_CODES.get(name, "internal-error"),
                "message": str(error),
                "detail": detail,
            },
        }
