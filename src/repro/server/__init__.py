"""A long-lived concurrent query server over the unified engine API.

The paper's engine answers one query per process; this package puts a
stdlib-only HTTP serving layer in front of any
:class:`~repro.api.QueryBackend` (a
:class:`~repro.core.engine.FileQueryEngine` or a
:class:`~repro.shard.ShardedEngine`), so callers stop paying process
startup and cold caches on every query:

- ``POST /query``   — execute, with cursor pagination and per-request budgets;
- ``POST /explain`` — the plan, unexecuted;
- ``POST /analyze`` — EXPLAIN ANALYZE (the pinned ``analyze.schema.json`` shape);
- ``GET  /stats``   — server counters + admission state + engine/cache stats;
- ``GET  /healthz`` — liveness.

Concurrency is bounded twice: an :class:`AdmissionController` mints
per-request :class:`~repro.resilience.ResourceBudget` quotas from a
server-level budget and rejects past ``workers + queue_depth`` in flight
(structured 429), and a :class:`WorkerPool` with a hard queue cap executes
what was admitted.  All requests share one backend — and therefore its
thread-safe plan/region/parse caches, so traffic warms itself.

See ``docs/server.md`` for the wire contract
(``schemas/server.schema.json``) and ``repro serve`` for the CLI.
"""

from repro.server.admission import Admission, AdmissionController, mint_quota
from repro.server.app import ERROR_CODES, QueryServerApp, ServerConfig
from repro.server.http import QueryServer
from repro.server.pool import WorkerPool
from repro.server.stats import ServerStats

__all__ = [
    "Admission",
    "AdmissionController",
    "ERROR_CODES",
    "QueryServer",
    "QueryServerApp",
    "ServerConfig",
    "ServerStats",
    "WorkerPool",
    "mint_quota",
]
