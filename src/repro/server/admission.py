"""Per-request admission control: quotas minted from a server-level budget.

A long-lived server cannot hand every request an unlimited
:class:`~repro.resilience.ResourceBudget` — one runaway query would starve
the rest.  The :class:`AdmissionController` holds the **server-level**
budget and mints a per-request quota for each admitted request:

- the wall-clock deadline passes through unchanged (it is already
  per-request semantics);
- ``max_regions`` and ``max_bytes_parsed`` are divided by the worker
  count, so even with every worker busy the *executing* requests can
  never collectively exceed the server's totals.

Admission also enforces the concurrency cap: at most ``workers``
executing plus ``queue_depth`` waiting.  A request past that is rejected
*immediately* with a typed :class:`~repro.errors.ServerOverloadedError`
carrying the admission snapshot — the structured 429 — instead of
degrading the healthy requests already in flight.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.errors import ServerOverloadedError
from repro.resilience.budget import ResourceBudget


def mint_quota(
    server_budget: ResourceBudget | None,
    workers: int,
    per_request: ResourceBudget | None = None,
) -> ResourceBudget | None:
    """The per-request quota: an explicit override wins; otherwise the
    server-level totals split evenly across the worker pool.  ``None``
    when the server runs unmetered."""
    if per_request is not None:
        return per_request
    if server_budget is None or server_budget.unlimited:
        return None
    share = max(1, workers)

    def split(total: int | None) -> int | None:
        if total is None:
            return None
        return max(1, total // share)

    return ResourceBudget(
        deadline_s=server_budget.deadline_s,
        max_regions=split(server_budget.max_regions),
        max_bytes_parsed=split(server_budget.max_bytes_parsed),
    )


@dataclass
class Admission:
    """One admitted request's ticket: release it exactly once."""

    budget: ResourceBudget | None
    _controller: "AdmissionController"
    _released: bool = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release()


class AdmissionController:
    """Thread-safe gate in front of the worker pool.

    ``admit()`` either returns an :class:`Admission` (with the minted
    per-request budget) or raises
    :class:`~repro.errors.ServerOverloadedError`.  The controller only
    counts — execution order is the pool's business.
    """

    def __init__(
        self,
        workers: int,
        queue_depth: int,
        server_budget: ResourceBudget | None = None,
        per_request_budget: ResourceBudget | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers!r}")
        if queue_depth < 0:
            raise ValueError(f"queue_depth must be >= 0, got {queue_depth!r}")
        self.workers = workers
        self.queue_depth = queue_depth
        self.capacity = workers + queue_depth
        self.server_budget = server_budget
        self.quota = mint_quota(server_budget, workers, per_request_budget)
        self._lock = threading.Lock()
        self._in_flight = 0
        self._admitted_total = 0
        self._rejected_total = 0
        self._peak_in_flight = 0

    def admit(self) -> Admission:
        with self._lock:
            if self._in_flight >= self.capacity:
                self._rejected_total += 1
                snapshot = self._snapshot_locked()
                raise ServerOverloadedError(
                    f"{self._in_flight} request(s) in flight >= capacity "
                    f"{self.capacity} ({self.workers} worker(s) + "
                    f"queue depth {self.queue_depth})",
                    snapshot=snapshot,
                )
            self._in_flight += 1
            self._admitted_total += 1
            self._peak_in_flight = max(self._peak_in_flight, self._in_flight)
        return Admission(budget=self.quota, _controller=self)

    def _release(self) -> None:
        with self._lock:
            self._in_flight -= 1

    def _snapshot_locked(self) -> dict[str, Any]:
        return {
            "in_flight": self._in_flight,
            "capacity": self.capacity,
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "peak_in_flight": self._peak_in_flight,
            "admitted_total": self._admitted_total,
            "rejected_total": self._rejected_total,
            "server_budget": (
                self.server_budget.describe()
                if self.server_budget is not None
                else "unlimited"
            ),
            "per_request_quota": (
                self.quota.describe() if self.quota is not None else "unlimited"
            ),
        }

    def snapshot(self) -> dict[str, Any]:
        """The admission state, for ``GET /stats`` and 429 error detail."""
        with self._lock:
            return self._snapshot_locked()
