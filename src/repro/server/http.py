"""The stdlib HTTP skin over :class:`~repro.server.app.QueryServerApp`.

``ThreadingHTTPServer`` supplies one thread per connection for parsing and
I/O; all *engine* work still flows through the app's admission control and
bounded worker pool, so concurrency of real work is capped regardless of
how many sockets are open.  Responses are ``application/json`` with
accurate ``Content-Length`` (HTTP/1.1 keep-alive friendly).

>>> server = QueryServer(engine, ServerConfig(port=0))   # doctest: +SKIP
>>> with server:                                         # doctest: +SKIP
...     print(server.url)                                # background thread
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.api import QueryBackend
from repro.server.app import QueryServerApp, ServerConfig

#: Refuse to buffer request bodies past this size (a query is text; 8 MiB
#: of body is a client bug, not a query).
MAX_BODY_BYTES = 8 * 1024 * 1024


def _retry_after_from(status: int, payload: dict[str, Any]) -> float | None:
    """The envelope's back-off hint, when the status calls for one (429
    overload, 503 draining/unavailable)."""
    if status not in (429, 503) or payload.get("kind") != "error":
        return None
    detail = payload.get("error", {}).get("detail", {})
    retry_after = detail.get("retry_after_s")
    if retry_after is None:
        retry_after = detail.get("admission", {}).get("retry_after_s")
    return retry_after


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server_version = "repro-query-server"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        app: QueryServerApp = self.server.app  # type: ignore[attr-defined]
        body: dict[str, Any] | None = None
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            self._respond(413, {
                "ok": False,
                "kind": "error",
                "status": 413,
                "error": {
                    "type": "HTTPError",
                    "code": "payload-too-large",
                    "message": f"request body {length} bytes exceeds {MAX_BODY_BYTES}",
                    "detail": {},
                },
            })
            return
        if length:
            raw = self.rfile.read(length)
            try:
                body = json.loads(raw)
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                self._respond(400, {
                    "ok": False,
                    "kind": "error",
                    "status": 400,
                    "error": {
                        "type": "HTTPError",
                        "code": "bad-json",
                        "message": f"request body is not valid JSON: {error}",
                        "detail": {},
                    },
                })
                return
            if not isinstance(body, dict):
                # Valid JSON, wrong shape: a request body is an object,
                # never an array/scalar — reject structured, not with a
                # 500 from deep inside request parsing.
                self._respond(400, {
                    "ok": False,
                    "kind": "error",
                    "status": 400,
                    "error": {
                        "type": "HTTPError",
                        "code": "bad-json",
                        "message": "request body must be a JSON object, got "
                        + type(body).__name__,
                        "detail": {},
                    },
                })
                return
        status, payload = app.handle(method, self.path.split("?", 1)[0], body)
        self._respond(status, payload)

    def _respond(self, status: int, payload: dict[str, Any]) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        retry_after = _retry_after_from(status, payload)
        if retry_after is not None:
            # Whole seconds, per RFC 9110; never 0 (that invites an
            # immediate, equally doomed retry).
            self.send_header("Retry-After", str(max(1, math.ceil(retry_after))))
        self.end_headers()
        try:
            self.wfile.write(data)
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-response; nothing to salvage

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # request logging lives in ServerStats, not stderr


class QueryServer:
    """A long-lived query server over one shared backend.

    Usable three ways: :meth:`serve_forever` (blocking, the CLI's mode),
    :meth:`start` (background thread, returns once the socket is bound),
    or as a context manager (start on enter, shut down on exit — the
    tests' mode).
    """

    def __init__(
        self,
        backend: QueryBackend,
        config: ServerConfig | None = None,
        scrubber=None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        self.app = QueryServerApp(backend, self.config, scrubber=scrubber)
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        self._httpd.daemon_threads = True
        self._httpd.app = self.app  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's pick)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (typically from a signal handler)."""
        if self.app.scrubber is not None:
            self.app.scrubber.start()
        try:
            self._httpd.serve_forever(poll_interval=0.1)
        finally:
            self._close()

    def start(self) -> "QueryServer":
        """Serve on a background thread; returns immediately."""
        if self.app.scrubber is not None:
            self.app.scrubber.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-query-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def shutdown(self) -> None:
        """Graceful drain, then release the socket.  Idempotent and safe
        to call from any thread.

        The sequence matters: first stop *admitting* engine work (new
        requests get structured 503s with ``Retry-After`` — the listener
        stays open so clients hear the rejection instead of a connection
        refusal), let requests already executing finish within
        ``drain_deadline_s`` (queued-but-unstarted ones are failed with
        typed 503s — they never ran, so retrying is safe), and only then
        stop the accept loop and close the listening socket.
        """
        self.app.start_draining()
        self.app.drain()
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._close()

    def _close(self) -> None:
        self.app.close()
        self._httpd.server_close()

    def __enter__(self) -> "QueryServer":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.shutdown()
