"""Tokenization.

The word index records "the location(s) of all the words in the file"
(Section 2 of the paper).  We tokenize with a simple, deterministic rule:
a *word* is a maximal run of alphanumeric characters (plus a configurable set
of extra word characters such as ``-`` for hyphenated names).  Tokens carry
their half-open ``[start, end)`` character span so that match points can be
joined against region indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

DEFAULT_EXTRA_WORD_CHARS = "-_"


@dataclass(frozen=True)
class Token:
    """A word occurrence: its text and half-open character span."""

    text: str
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end - self.start != len(self.text):
            raise ValueError(
                f"token span [{self.start}, {self.end}) does not match text of "
                f"length {len(self.text)}"
            )


def _is_word_char(char: str, extra: str) -> bool:
    return char.isalnum() or char in extra


def tokenize(
    text: str,
    *,
    extra_word_chars: str = DEFAULT_EXTRA_WORD_CHARS,
    lowercase: bool = False,
) -> Iterator[Token]:
    """Yield the word tokens of ``text`` in document order.

    Parameters
    ----------
    text:
        The text to tokenize.
    extra_word_chars:
        Characters treated as part of a word in addition to alphanumerics.
    lowercase:
        If true, token text is lowercased (spans still address the original
        text).  The index engine uses this for case-insensitive word indexes.
    """
    position = 0
    length = len(text)
    while position < length:
        if _is_word_char(text[position], extra_word_chars):
            start = position
            while position < length and _is_word_char(text[position], extra_word_chars):
                position += 1
            word = text[start:position]
            if lowercase:
                word = word.lower()
            yield Token(text=word, start=start, end=position)
        else:
            position += 1


def tokenize_words(text: str, **kwargs: object) -> list[str]:
    """Return just the word strings of ``text`` (convenience for tests)."""
    return [token.text for token in tokenize(text, **kwargs)]  # type: ignore[arg-type]
