"""Documents and corpora.

A :class:`Document` wraps one file's text.  A :class:`Corpus` concatenates
several documents into a single address space, which is how the PAT system
(and therefore our index engine) addresses text: every match point and region
is an offset into the corpus text.  Documents are separated by a single
newline so regions can never accidentally span two files.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import RegionError

_SEPARATOR = "\n"


@dataclass(frozen=True)
class Document:
    """One file's worth of text.

    Parameters
    ----------
    name:
        A human-readable identifier (usually the file path).
    text:
        The full contents of the file.
    """

    name: str
    text: str

    @classmethod
    def from_path(cls, path: str | os.PathLike[str], encoding: str = "utf-8") -> "Document":
        """Read a document from the file system."""
        with open(path, "r", encoding=encoding) as handle:
            return cls(name=str(path), text=handle.read())

    def __len__(self) -> int:
        return len(self.text)


class Corpus:
    """An ordered collection of documents with a single address space.

    The corpus exposes ``text``, the concatenation of all document texts
    (separated by one newline), plus the mapping between corpus offsets and
    ``(document, local offset)`` pairs.  All indexes and region sets in the
    library address this concatenated text.
    """

    def __init__(self, documents: Iterable[Document] = ()) -> None:
        self._documents: list[Document] = []
        self._starts: list[int] = []
        self._text_parts: list[str] = []
        self._length = 0
        for document in documents:
            self.add(document)

    # -- construction -----------------------------------------------------

    def add(self, document: Document) -> int:
        """Append a document; return the corpus offset where it starts."""
        if self._documents:
            self._text_parts.append(_SEPARATOR)
            self._length += len(_SEPARATOR)
        start = self._length
        self._starts.append(start)
        self._documents.append(document)
        self._text_parts.append(document.text)
        self._length += len(document.text)
        return start

    @classmethod
    def from_texts(cls, texts: Iterable[str], prefix: str = "doc") -> "Corpus":
        """Build a corpus from raw strings, naming them ``doc0``, ``doc1``, ..."""
        corpus = cls()
        for number, text in enumerate(texts):
            corpus.add(Document(name=f"{prefix}{number}", text=text))
        return corpus

    @classmethod
    def from_paths(cls, paths: Iterable[str | os.PathLike[str]]) -> "Corpus":
        """Build a corpus by reading each path from disk."""
        return cls(Document.from_path(path) for path in paths)

    # -- access ------------------------------------------------------------

    @property
    def text(self) -> str:
        """The concatenated corpus text."""
        return "".join(self._text_parts)

    @property
    def documents(self) -> tuple[Document, ...]:
        return tuple(self._documents)

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents)

    def document_span(self, index: int) -> tuple[int, int]:
        """Return the ``(start, end)`` corpus offsets of document ``index``."""
        start = self._starts[index]
        return start, start + len(self._documents[index])

    def locate(self, offset: int) -> tuple[int, int]:
        """Map a corpus offset to ``(document index, local offset)``.

        Offsets falling on an inter-document separator are attributed to the
        preceding document (at its one-past-the-end position).
        """
        if offset < 0 or offset > self._length:
            raise RegionError(f"offset {offset} outside corpus of length {self._length}")
        low, high = 0, len(self._starts) - 1
        while low < high:
            mid = (low + high + 1) // 2
            if self._starts[mid] <= offset:
                low = mid
            else:
                high = mid - 1
        return low, offset - self._starts[low]
