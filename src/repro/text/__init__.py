"""Text substrate: documents, corpora, and tokenization.

The paper queries data "residing in files".  This package provides the file
abstraction the rest of the library works over: a :class:`Document` is one
file's text, a :class:`Corpus` is an ordered collection of documents exposed
as a single concatenated address space (the way PAT indexes a text
collection), and :func:`tokenize` produces the word occurrences that feed the
word index.
"""

from repro.text.document import Document, Corpus
from repro.text.tokenizer import Token, tokenize, tokenize_words

__all__ = ["Document", "Corpus", "Token", "tokenize", "tokenize_words"]
