"""Per-shard circuit breakers.

Retrying is the right response to a *transient* failure; it is exactly the
wrong response to a shard that has been failing for the last hundred
queries — every query then pays the full retry ladder before giving up.
A :class:`CircuitBreaker` remembers recent history and converts repeated
failure into a fast local decision:

- **closed** — normal operation; failures are counted, successes reset
  the count;
- **open** — ``failure_threshold`` consecutive failures tripped the
  breaker: calls are refused outright (``allow()`` is false) until
  ``reset_timeout_s`` has elapsed;
- **half-open** — the cooldown elapsed: exactly one probe call is let
  through at a time.  ``half_open_successes`` successful probes close the
  breaker; any probe failure re-opens it and restarts the cooldown.

The clock is injectable so the open → half-open transition is testable
without sleeping, and all transitions are lock-protected so one breaker
can guard a shard queried from a scatter-gather pool.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip and recovery parameters for one :class:`CircuitBreaker`.

    Attributes
    ----------
    failure_threshold:
        Consecutive failures (while closed) that trip the breaker open.
    reset_timeout_s:
        Seconds the breaker stays open before allowing half-open probes.
    half_open_successes:
        Successful probes required to close again from half-open.
    """

    failure_threshold: int = 3
    reset_timeout_s: float = 30.0
    half_open_successes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold!r}"
            )
        if self.reset_timeout_s < 0:
            raise ValueError(
                f"reset_timeout_s must be non-negative, got {self.reset_timeout_s!r}"
            )
        if self.half_open_successes < 1:
            raise ValueError(
                f"half_open_successes must be >= 1, got {self.half_open_successes!r}"
            )

    def describe(self) -> str:
        return (
            f"trip after {self.failure_threshold} failure(s), "
            f"retry after {self.reset_timeout_s:g}s, "
            f"close after {self.half_open_successes} probe success(es)"
        )


class CircuitBreaker:
    """One shard's failure memory: closed → open → half-open → closed.

    Usage is the classic three-call protocol::

        if breaker.allow():
            try:
                work()
            except Exception:
                breaker.record_failure()
                raise
            else:
                breaker.record_success()
        else:
            ...skip the shard...

    ``allow()`` returning true *reserves* a call: in half-open state only
    one probe is outstanding at a time, and its ``record_success`` /
    ``record_failure`` decides the next state.  Thread-safe.
    """

    __slots__ = (
        "config",
        "name",
        "_clock",
        "_lock",
        "_state",
        "_failures",
        "_probe_successes",
        "_probe_in_flight",
        "_probe_owner",
        "_opened_at",
        "_trips",
    )

    def __init__(
        self,
        config: BreakerConfig | None = None,
        name: str = "",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.config = config if config is not None else BreakerConfig()
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._probe_successes = 0
        self._probe_in_flight = False
        self._probe_owner: int | None = None
        self._opened_at: float | None = None
        self._trips = 0

    # -- state ----------------------------------------------------------------

    @property
    def state(self) -> str:
        """``"closed"`` | ``"open"`` | ``"half-open"`` (cooldown applied)."""
        with self._lock:
            self._poll()
            return self._state

    @property
    def trips(self) -> int:
        """How many times this breaker has tripped open (lifetime)."""
        with self._lock:
            return self._trips

    def _poll(self) -> None:
        """Open → half-open once the cooldown has elapsed (lock held)."""
        if self._state == OPEN and self._opened_at is not None:
            if self._clock() - self._opened_at >= self.config.reset_timeout_s:
                self._state = HALF_OPEN
                self._probe_successes = 0
                self._probe_in_flight = False
                self._probe_owner = None

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._trips += 1
        self._probe_in_flight = False
        self._probe_owner = None

    # -- protocol -------------------------------------------------------------

    def allow(self) -> bool:
        """May a call proceed right now?  In half-open state a true answer
        reserves the single probe slot until its outcome is recorded.

        The probe reservation is owned by the admitted *thread*: a caller
        that was admitted earlier (while the breaker was still closed) and
        only reports its outcome after the half-open transition cannot
        release the slot or close the breaker — only the probe's own
        ``record_success`` counts as probe evidence.
        """
        with self._lock:
            self._poll()
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                return False
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            self._probe_owner = threading.get_ident()
            return True

    def _is_probe_outcome(self) -> bool:
        """Whether the reporting caller holds the half-open probe slot
        (lock held).  Stale closed-era callers do not."""
        return (
            self._probe_in_flight
            and self._probe_owner == threading.get_ident()
        )

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                if not self._is_probe_outcome():
                    return  # stale success from the closed era: not evidence
                self._probe_in_flight = False
                self._probe_owner = None
                self._probe_successes += 1
                if self._probe_successes >= self.config.half_open_successes:
                    self._state = CLOSED
                    self._failures = 0
                    self._opened_at = None
            else:
                self._probe_in_flight = False
                self._probe_owner = None
                self._failures = 0

    def record_failure(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                # Any failure report re-opens — probe or stale caller alike;
                # a failure is evidence of unhealth regardless of its era.
                self._trip()
                return
            self._probe_in_flight = False
            self._probe_owner = None
            self._failures += 1
            if self._state == CLOSED and self._failures >= self.config.failure_threshold:
                self._trip()

    # -- introspection --------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready view of the breaker for warnings and shard stats."""
        with self._lock:
            self._poll()
            open_for = (
                self._clock() - self._opened_at
                if self._state == OPEN and self._opened_at is not None
                else None
            )
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "trips": self._trips,
                "open_for_s": open_for,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CircuitBreaker({self.name!r}, {self._state}, failures={self._failures})"
