"""Fault-tolerant query execution.

The paper's premise is that queries on files must survive contact with
messy reality: indexes go corrupt or stale on disk, single regions go
malformed, and evaluation cost is hard to bound statically.  This package
is the fault-tolerance layer threaded through the engine:

- :mod:`repro.resilience.budget` — guarded evaluation:
  :class:`ResourceBudget` / :class:`BudgetMeter` enforce wall-clock
  deadlines and caps on regions materialized / bytes parsed inside the
  evaluator and executor loops, raising
  :class:`~repro.errors.BudgetExceededError` with partial progress;
- :mod:`repro.resilience.policy` — :class:`DegradationPolicy` decides,
  per failure class (corrupt / stale / missing index, blown budget,
  malformed region), between typed errors and graceful fallback to the
  cached full-scan pipeline or an index rebuild;
- :mod:`repro.resilience.retry` — :class:`RetryPolicy` /
  :func:`call_with_retry`: capped, deterministically jittered exponential
  backoff for transient I/O failures (used per shard by
  :class:`~repro.shard.ShardedEngine`);
- :mod:`repro.resilience.breaker` — :class:`CircuitBreaker` /
  :class:`BreakerConfig`: the closed → open → half-open state machine
  that stops hammering a shard that keeps failing;
- :mod:`repro.resilience.warnings` — :class:`QueryWarning`, the
  structured record of every degradation decision, surfaced on
  ``QueryResult.warnings`` and as ``degraded`` spans in the trace;
- :mod:`repro.resilience.faults` — deterministic fault injection
  (index corruption, truncation, mid-parse failures, slow operators,
  transient shard I/O faults, slow shards) so every degradation path is
  exercised in CI.

See ``docs/robustness.md`` for the full semantics.
"""

from repro.resilience.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
)
from repro.resilience.budget import BudgetMeter, ResourceBudget, combine_budgets
from repro.resilience.faults import (
    FlakySchema,
    HungShard,
    SlowInstance,
    SlowShard,
    TransientIOFault,
    WorkerStall,
    corrupt_index_file,
    truncate_file,
)
from repro.resilience.policy import DegradationPolicy
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.resilience.warnings import (
    BUDGET_DEGRADED,
    DEGRADED_FULL_SCAN,
    DELTA_REPLAYED,
    INDEX_CORRUPT,
    INDEX_MISSING,
    INDEX_REBUILT,
    INDEX_STALE,
    MALFORMED_REGION,
    PARTIAL_RESULT,
    SHARD_FAILED,
    SHARD_HEDGED,
    SHARD_RETRIED,
    SHARD_SKIPPED_OPEN_BREAKER,
    SHARD_SPLIT,
    SHARD_TIMEOUT,
    STALE_STAGING_REMOVED,
    UNVERIFIED_LEGACY_INDEX,
    QueryWarning,
    malformed_region_warning,
)

__all__ = [
    "ResourceBudget",
    "BudgetMeter",
    "combine_budgets",
    "DegradationPolicy",
    "RetryPolicy",
    "call_with_retry",
    "BreakerConfig",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "QueryWarning",
    "malformed_region_warning",
    "FlakySchema",
    "HungShard",
    "SlowInstance",
    "SlowShard",
    "TransientIOFault",
    "WorkerStall",
    "corrupt_index_file",
    "truncate_file",
    # warning codes
    "INDEX_MISSING",
    "INDEX_CORRUPT",
    "INDEX_STALE",
    "INDEX_REBUILT",
    "DEGRADED_FULL_SCAN",
    "BUDGET_DEGRADED",
    "MALFORMED_REGION",
    "SHARD_FAILED",
    "SHARD_HEDGED",
    "SHARD_RETRIED",
    "SHARD_SKIPPED_OPEN_BREAKER",
    "SHARD_TIMEOUT",
    "PARTIAL_RESULT",
    "DELTA_REPLAYED",
    "SHARD_SPLIT",
    "STALE_STAGING_REMOVED",
    "UNVERIFIED_LEGACY_INDEX",
]
