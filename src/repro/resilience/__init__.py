"""Fault-tolerant query execution.

The paper's premise is that queries on files must survive contact with
messy reality: indexes go corrupt or stale on disk, single regions go
malformed, and evaluation cost is hard to bound statically.  This package
is the fault-tolerance layer threaded through the engine:

- :mod:`repro.resilience.budget` — guarded evaluation:
  :class:`ResourceBudget` / :class:`BudgetMeter` enforce wall-clock
  deadlines and caps on regions materialized / bytes parsed inside the
  evaluator and executor loops, raising
  :class:`~repro.errors.BudgetExceededError` with partial progress;
- :mod:`repro.resilience.policy` — :class:`DegradationPolicy` decides,
  per failure class (corrupt / stale / missing index, blown budget,
  malformed region), between typed errors and graceful fallback to the
  cached full-scan pipeline or an index rebuild;
- :mod:`repro.resilience.warnings` — :class:`QueryWarning`, the
  structured record of every degradation decision, surfaced on
  ``QueryResult.warnings`` and as ``degraded`` spans in the trace;
- :mod:`repro.resilience.faults` — deterministic fault injection
  (index corruption, truncation, mid-parse failures, slow operators)
  so every degradation path is exercised in CI.

See ``docs/robustness.md`` for the full semantics.
"""

from repro.resilience.budget import BudgetMeter, ResourceBudget
from repro.resilience.faults import (
    FlakySchema,
    SlowInstance,
    corrupt_index_file,
    truncate_file,
)
from repro.resilience.policy import DegradationPolicy
from repro.resilience.warnings import (
    BUDGET_DEGRADED,
    DEGRADED_FULL_SCAN,
    INDEX_CORRUPT,
    INDEX_MISSING,
    INDEX_REBUILT,
    INDEX_STALE,
    MALFORMED_REGION,
    QueryWarning,
    malformed_region_warning,
)

__all__ = [
    "ResourceBudget",
    "BudgetMeter",
    "DegradationPolicy",
    "QueryWarning",
    "malformed_region_warning",
    "FlakySchema",
    "SlowInstance",
    "corrupt_index_file",
    "truncate_file",
    # warning codes
    "INDEX_MISSING",
    "INDEX_CORRUPT",
    "INDEX_STALE",
    "INDEX_REBUILT",
    "DEGRADED_FULL_SCAN",
    "BUDGET_DEGRADED",
    "MALFORMED_REGION",
]
