"""Structured query warnings.

Degradation decisions (falling back to full-scan, rebuilding a corrupt
index, skipping a malformed region) must be *visible* without failing the
query: each one becomes a :class:`QueryWarning` carried on
``QueryResult.warnings`` (and under ``"warnings"`` in the stable
``QueryStats.to_dict()`` JSON shape).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Warning codes (stable strings — the CLI and tests match on them).
INDEX_MISSING = "index-missing"
INDEX_CORRUPT = "index-corrupt"
INDEX_STALE = "index-stale"
INDEX_REBUILT = "index-rebuilt"
DEGRADED_FULL_SCAN = "degraded-full-scan"
BUDGET_DEGRADED = "budget-degraded"
MALFORMED_REGION = "malformed-region"
SHARD_FAILED = "shard-failed"
SHARD_RETRIED = "shard-retried"
SHARD_SKIPPED_OPEN_BREAKER = "shard-skipped-open-breaker"
SHARD_HEDGED = "shard-hedged"
SHARD_TIMEOUT = "shard-timeout"
PARTIAL_RESULT = "partial-result"
REPLANNED = "replanned"
DELTA_REPLAYED = "delta-replayed"
SHARD_SPLIT = "shard-split"
STALE_STAGING_REMOVED = "stale-staging-removed"
UNVERIFIED_LEGACY_INDEX = "unverified-legacy-index"
REPLICA_FAILOVER = "replica-failover"
REPLICA_QUARANTINED = "replica-quarantined"
REPLICA_REPAIRED = "replica-repaired"
QUORUM_DEGRADED = "quorum-degraded"


@dataclass(frozen=True)
class QueryWarning:
    """One non-fatal incident surfaced by a query.

    ``code`` is a stable machine-matchable identifier (see the module
    constants); ``message`` is the human-readable account; ``detail``
    carries structured context (region offsets, parse positions, paths).
    """

    code: str
    message: str
    detail: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"code": self.code, "message": self.message, "detail": dict(self.detail)}

    def __str__(self) -> str:
        return f"[{self.code}] {self.message}"


def malformed_region_warning(error, region) -> QueryWarning:
    """The structured warning for one candidate region that failed to
    re-parse under ``skip_malformed`` — position/symbol preserved."""
    return QueryWarning(
        code=MALFORMED_REGION,
        message=(
            f"skipped malformed region ({region.start}, {region.end}): {error}"
        ),
        detail={
            "start": region.start,
            "end": region.end,
            "position": getattr(error, "position", 0),
            "symbol": getattr(error, "symbol", None),
        },
    )
