"""Guarded evaluation: resource budgets for query execution.

Document-spanner complexity results (and the P-completeness of inverted
index traversal) make it hard to bound a region-expression evaluation
statically — a plan that looks cheap can materialize huge intermediate
region sets or re-parse large swaths of the file.  A
:class:`ResourceBudget` turns those open-ended costs into enforced runtime
limits: a wall-clock deadline, a cap on regions materialized by the
algebra evaluator, and a cap on file bytes re-parsed during candidate
filtering.

The budget itself is an immutable declaration; each guarded query run
creates a :class:`BudgetMeter` that tracks consumption and raises
:class:`~repro.errors.BudgetExceededError` (carrying a partial-progress
snapshot) the moment a limit is crossed.  Checks sit inside the operator
loops of :mod:`repro.algebra.evaluator` and :mod:`repro.core.partial`, so
a runaway query is stopped between operators / candidate regions, not
only at the end.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro.errors import BudgetExceededError


@dataclass(frozen=True)
class ResourceBudget:
    """Limits for one query execution; ``None`` disables that limit.

    Attributes
    ----------
    deadline_s:
        Wall-clock seconds the execution may take, measured from the
        moment the meter starts (plan execution start).
    max_regions:
        Total regions the algebra evaluator may materialize across all
        expression nodes (cache and memo hits are free — they do no work).
    max_bytes_parsed:
        Total file bytes the executor may (re-)parse: candidate regions
        plus full scans.
    """

    deadline_s: float | None = None
    max_regions: int | None = None
    max_bytes_parsed: int | None = None

    def __post_init__(self) -> None:
        for name in ("deadline_s", "max_regions", "max_bytes_parsed"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"budget {name} must be non-negative, got {value!r}")

    @property
    def unlimited(self) -> bool:
        return (
            self.deadline_s is None
            and self.max_regions is None
            and self.max_bytes_parsed is None
        )

    def describe(self) -> str:
        parts = []
        if self.deadline_s is not None:
            parts.append(f"deadline {self.deadline_s * 1e3:.0f}ms")
        if self.max_regions is not None:
            parts.append(f"max {self.max_regions} regions")
        if self.max_bytes_parsed is not None:
            parts.append(f"max {self.max_bytes_parsed} bytes parsed")
        return ", ".join(parts) if parts else "unlimited"

    def meter(self) -> "BudgetMeter":
        """Start a meter for one execution (the clock starts now)."""
        return BudgetMeter(self)


class BudgetMeter:
    """Tracks one execution's consumption against a :class:`ResourceBudget`.

    Not thread-safe: one meter serves one query execution, like a tracer.
    """

    __slots__ = ("budget", "started_at", "regions", "bytes_parsed")

    def __init__(self, budget: ResourceBudget) -> None:
        self.budget = budget
        self.started_at = perf_counter()
        self.regions = 0
        self.bytes_parsed = 0

    @property
    def elapsed_s(self) -> float:
        return perf_counter() - self.started_at

    def snapshot(self) -> dict:
        """Partial-progress statistics, embedded in the raised error."""
        return {
            "elapsed_s": self.elapsed_s,
            "regions_materialized": self.regions,
            "bytes_parsed": self.bytes_parsed,
            "budget": self.budget.describe(),
        }

    def _exceeded(self, resource: str, limit: float, spent: float) -> BudgetExceededError:
        return BudgetExceededError(
            resource=resource, limit=limit, spent=spent, partial=self.snapshot()
        )

    def check_deadline(self) -> None:
        deadline = self.budget.deadline_s
        if deadline is not None:
            elapsed = self.elapsed_s
            if elapsed > deadline:
                raise self._exceeded("wall_clock", deadline, round(elapsed, 6))

    def charge_regions(self, count: int) -> None:
        """Account ``count`` freshly materialized regions (also checks the
        deadline — this is the per-operator guard point)."""
        self.regions += count
        limit = self.budget.max_regions
        if limit is not None and self.regions > limit:
            raise self._exceeded("regions", limit, self.regions)
        self.check_deadline()

    def charge_bytes(self, count: int) -> None:
        """Account ``count`` file bytes parsed (also checks the deadline —
        this is the per-candidate guard point)."""
        self.bytes_parsed += count
        limit = self.budget.max_bytes_parsed
        if limit is not None and self.bytes_parsed > limit:
            raise self._exceeded("bytes", limit, self.bytes_parsed)
        self.check_deadline()
