"""Guarded evaluation: resource budgets for query execution.

Document-spanner complexity results (and the P-completeness of inverted
index traversal) make it hard to bound a region-expression evaluation
statically — a plan that looks cheap can materialize huge intermediate
region sets or re-parse large swaths of the file.  A
:class:`ResourceBudget` turns those open-ended costs into enforced runtime
limits: a wall-clock deadline, a cap on regions materialized by the
algebra evaluator, and a cap on file bytes re-parsed during candidate
filtering.

The budget itself is an immutable declaration; each guarded query run
creates a :class:`BudgetMeter` that tracks consumption and raises
:class:`~repro.errors.BudgetExceededError` (carrying a partial-progress
snapshot) the moment a limit is crossed.  Checks sit inside the operator
loops of :mod:`repro.algebra.evaluator` and :mod:`repro.core.partial`, so
a runaway query is stopped between operators / candidate regions, not
only at the end.

End-to-end deadlines
--------------------
``deadline_s`` alone is *relative*: each meter restarts the clock, so a
request crossing layer boundaries (server admission → worker pool →
scatter-gather → per-shard evaluation) would silently re-arm its deadline
at every hop.  :meth:`ResourceBudget.started` converts the relative
deadline into an **absolute** one (``deadline_at``, on the
``perf_counter`` clock) exactly once — at admission — and every meter
downstream measures against that same instant.  Layers that want the
clamp to be *visible* (a shard dispatched late should report the smaller
window it actually got) call :meth:`ResourceBudget.at_dispatch`, which
rewrites ``deadline_s`` to the remaining time while keeping the absolute
anchor.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from time import perf_counter

from repro.errors import BudgetExceededError


def combine_budgets(
    requested: "ResourceBudget | None", quota: "ResourceBudget | None"
) -> "ResourceBudget | None":
    """The effective budget: the tighter of what the caller asked for and
    what the quota allows, limit by limit.  A caller may narrow its quota,
    never widen it.  Absolute deadlines combine to the earlier instant.
    """
    if requested is None:
        return quota
    if quota is None:
        return requested

    def tighter(a, b):
        if a is None:
            return b
        if b is None:
            return a
        return min(a, b)

    return ResourceBudget(
        deadline_s=tighter(requested.deadline_s, quota.deadline_s),
        max_regions=tighter(requested.max_regions, quota.max_regions),
        max_bytes_parsed=tighter(requested.max_bytes_parsed, quota.max_bytes_parsed),
        deadline_at=tighter(requested.deadline_at, quota.deadline_at),
    )


@dataclass(frozen=True)
class ResourceBudget:
    """Limits for one query execution; ``None`` disables that limit.

    Attributes
    ----------
    deadline_s:
        Wall-clock seconds the execution may take, measured from the
        moment the meter starts (plan execution start).
    max_regions:
        Total regions the algebra evaluator may materialize across all
        expression nodes (cache and memo hits are free — they do no work).
    max_bytes_parsed:
        Total file bytes the executor may (re-)parse: candidate regions
        plus full scans.
    deadline_at:
        Absolute end-to-end deadline on the ``perf_counter`` clock,
        stamped by :meth:`started` at admission.  When set, every meter
        derived from this budget measures against this single instant —
        the deadline never restarts at a layer boundary.
    """

    deadline_s: float | None = None
    max_regions: int | None = None
    max_bytes_parsed: int | None = None
    deadline_at: float | None = None

    def __post_init__(self) -> None:
        for name in ("deadline_s", "max_regions", "max_bytes_parsed"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"budget {name} must be non-negative, got {value!r}")

    @property
    def unlimited(self) -> bool:
        return (
            self.deadline_s is None
            and self.max_regions is None
            and self.max_bytes_parsed is None
            and self.deadline_at is None
        )

    def started(self, now: float | None = None) -> "ResourceBudget":
        """Mint the absolute end-to-end deadline (idempotent).

        Call exactly once at admission — the top of the request path.
        A budget without a relative deadline, or one already stamped,
        passes through unchanged.
        """
        if self.deadline_s is None or self.deadline_at is not None:
            return self
        now = perf_counter() if now is None else now
        return replace(self, deadline_at=now + self.deadline_s)

    def remaining_s(self, now: float | None = None) -> float | None:
        """Seconds left until the absolute deadline (``None`` when no
        absolute deadline was minted; never negative)."""
        if self.deadline_at is None:
            return None
        now = perf_counter() if now is None else now
        return max(0.0, self.deadline_at - now)

    def at_dispatch(self, now: float | None = None) -> "ResourceBudget":
        """Clamp ``deadline_s`` to the remaining end-to-end time.

        Used at every dispatch boundary (e.g. handing a shard its
        budget): the shard sees — and reports — the window it actually
        has, not the request's original full deadline.  The absolute
        anchor is kept, so the clamp can never *extend* the deadline.
        """
        remaining = self.remaining_s(now)
        if remaining is None or self.deadline_s is None:
            return self
        if remaining >= self.deadline_s:
            return self
        return replace(self, deadline_s=remaining)

    def describe(self) -> str:
        parts = []
        if self.deadline_s is not None:
            note = " end-to-end" if self.deadline_at is not None else ""
            parts.append(f"deadline {self.deadline_s * 1e3:.0f}ms{note}")
        elif self.deadline_at is not None:
            parts.append("absolute deadline")
        if self.max_regions is not None:
            parts.append(f"max {self.max_regions} regions")
        if self.max_bytes_parsed is not None:
            parts.append(f"max {self.max_bytes_parsed} bytes parsed")
        return ", ".join(parts) if parts else "unlimited"

    def meter(self) -> "BudgetMeter":
        """Start a meter for one execution (the clock starts now; an
        absolute ``deadline_at`` overrides the relative restart)."""
        return BudgetMeter(self)


class BudgetMeter:
    """Tracks one execution's consumption against a :class:`ResourceBudget`.

    Not thread-safe: one meter serves one query execution, like a tracer.
    """

    __slots__ = ("budget", "started_at", "deadline_at", "regions", "bytes_parsed")

    def __init__(self, budget: ResourceBudget) -> None:
        self.budget = budget
        self.started_at = perf_counter()
        # An absolute (end-to-end) deadline wins over the relative one:
        # a meter started late in the request's life gets only what is
        # left, never a fresh window.
        if budget.deadline_at is not None:
            self.deadline_at = budget.deadline_at
        elif budget.deadline_s is not None:
            self.deadline_at = self.started_at + budget.deadline_s
        else:
            self.deadline_at = None
        self.regions = 0
        self.bytes_parsed = 0

    @property
    def elapsed_s(self) -> float:
        return perf_counter() - self.started_at

    def snapshot(self) -> dict:
        """Partial-progress statistics, embedded in the raised error."""
        snapshot = {
            "elapsed_s": self.elapsed_s,
            "regions_materialized": self.regions,
            "bytes_parsed": self.bytes_parsed,
            "budget": self.budget.describe(),
        }
        if self.budget.deadline_at is not None:
            snapshot["remaining_s"] = max(0.0, self.deadline_at - perf_counter())
        return snapshot

    def _exceeded(self, resource: str, limit: float, spent: float) -> BudgetExceededError:
        return BudgetExceededError(
            resource=resource, limit=limit, spent=spent, partial=self.snapshot()
        )

    def check_deadline(self) -> None:
        if self.deadline_at is not None and perf_counter() > self.deadline_at:
            limit = (
                self.budget.deadline_s
                if self.budget.deadline_s is not None
                else round(self.deadline_at - self.started_at, 6)
            )
            raise self._exceeded("wall_clock", limit, round(self.elapsed_s, 6))

    def charge_regions(self, count: int) -> None:
        """Account ``count`` freshly materialized regions (also checks the
        deadline — this is the per-operator guard point)."""
        self.regions += count
        limit = self.budget.max_regions
        if limit is not None and self.regions > limit:
            raise self._exceeded("regions", limit, self.regions)
        self.check_deadline()

    def charge_bytes(self, count: int) -> None:
        """Account ``count`` file bytes parsed (also checks the deadline —
        this is the per-candidate guard point)."""
        self.bytes_parsed += count
        limit = self.budget.max_bytes_parsed
        if limit is not None and self.bytes_parsed > limit:
            raise self._exceeded("bytes", limit, self.bytes_parsed)
        self.check_deadline()
