"""Degradation policies: what the engine does when things go wrong.

A :class:`DegradationPolicy` decides, per failure class, whether the
engine raises a typed error or degrades gracefully:

- a **corrupt** saved index (checksum mismatch, truncated file) can be
  rebuilt from the surviving corpus text, or bypassed entirely by running
  every query through the cached full-scan pipeline;
- a **stale** saved index (the source file changed after indexing) can be
  rebuilt from the fresh source, or bypassed with full scans over the
  fresh text — never answered from the stale index, which would be wrong;
- a **missing** saved index can be rebuilt from a provided source;
- a query that blows its :class:`~repro.resilience.ResourceBudget` can be
  retried once through the (predictable-cost, unguarded) full-scan
  pipeline instead of raising.

Every degradation is recorded on ``QueryResult.warnings`` and as a
``degraded`` span in the query trace, so "it worked" and "it worked by
falling back" stay distinguishable.
"""

from __future__ import annotations

from dataclasses import dataclass

RAISE = "raise"
FULL_SCAN = "full-scan"
REBUILD = "rebuild"

_INDEX_ACTIONS = (RAISE, FULL_SCAN, REBUILD)
_BUDGET_ACTIONS = (RAISE, FULL_SCAN)


@dataclass(frozen=True)
class DegradationPolicy:
    """Per-failure-class degradation decisions.

    Attributes
    ----------
    on_corrupt / on_stale / on_missing:
        ``"raise"`` | ``"full-scan"`` | ``"rebuild"``.  ``"rebuild"``
        re-parses the best available text (fresh source if provided, else
        the saved corpus) and builds a full index; ``"full-scan"`` skips
        index construction and serves every query through the cached
        full-scan pipeline.  Either way needs *some* intact text: a
        corrupt corpus with no source still raises.
    on_budget:
        ``"raise"`` | ``"full-scan"``.  What to do when a query exceeds
        its resource budget mid-flight.
    skip_malformed:
        Tolerant candidate parsing: when true, a candidate region that
        fails to re-parse is skipped and recorded as a structured
        ``malformed-region`` warning; when false it aborts the query with
        :class:`~repro.errors.CandidateParseError` (position/symbol of the
        underlying parse failure preserved).
    """

    on_corrupt: str = FULL_SCAN
    on_stale: str = FULL_SCAN
    on_missing: str = RAISE
    on_budget: str = RAISE
    skip_malformed: bool = True

    def __post_init__(self) -> None:
        for name in ("on_corrupt", "on_stale", "on_missing"):
            if getattr(self, name) not in _INDEX_ACTIONS:
                raise ValueError(
                    f"policy {name} must be one of {_INDEX_ACTIONS}, "
                    f"got {getattr(self, name)!r}"
                )
        if self.on_budget not in _BUDGET_ACTIONS:
            raise ValueError(
                f"policy on_budget must be one of {_BUDGET_ACTIONS}, "
                f"got {self.on_budget!r}"
            )

    @classmethod
    def strict(cls) -> "DegradationPolicy":
        """Fail fast on everything: typed errors, no silent fallbacks."""
        return cls(
            on_corrupt=RAISE,
            on_stale=RAISE,
            on_missing=RAISE,
            on_budget=RAISE,
            skip_malformed=False,
        )

    @classmethod
    def degrade(cls) -> "DegradationPolicy":
        """Keep answering whenever an intact text exists: full-scan past
        corrupt/stale indexes and blown budgets, skip malformed regions."""
        return cls(
            on_corrupt=FULL_SCAN,
            on_stale=FULL_SCAN,
            on_missing=REBUILD,
            on_budget=FULL_SCAN,
            skip_malformed=True,
        )

    @classmethod
    def rebuild(cls) -> "DegradationPolicy":
        """Auto-rebuild the index from the best available text instead of
        running degraded (pays one parse, keeps queries indexed)."""
        return cls(
            on_corrupt=REBUILD,
            on_stale=REBUILD,
            on_missing=REBUILD,
            on_budget=FULL_SCAN,
            skip_malformed=True,
        )

    def describe(self) -> str:
        return (
            f"corrupt={self.on_corrupt}, stale={self.on_stale}, "
            f"missing={self.on_missing}, budget={self.on_budget}, "
            f"skip_malformed={self.skip_malformed}"
        )
