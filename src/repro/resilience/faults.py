"""Deterministic fault injection.

Every degradation path in the engine must be *exercisable* in CI, not just
theoretically reachable.  This module provides the levers:

- :func:`corrupt_index_file` / :func:`truncate_file` — damage a saved
  index on disk (garbage bytes, truncation, deletion) so checksum
  verification and the corrupt-index degradation paths fire;
- :class:`FlakySchema` — a structuring-schema wrapper that injects
  mid-parse failures (raise :class:`~repro.errors.ParseError` on chosen
  parse calls) and slow parsing (a fixed delay per parse call), driving
  the tolerant-parsing and wall-clock-budget paths;
- :class:`SlowInstance` — a region-instance wrapper that delays every
  name lookup, making algebra evaluation deterministically slow for
  deadline-budget tests;
- :class:`TransientIOFault` / :class:`SlowShard` / :class:`HungShard` —
  shard-level injectors plugged into
  :class:`~repro.shard.ShardedEngine` as its ``fault_injector`` hook: the
  first fails the first *K* shard-open attempts with :class:`OSError`
  (exercising retry/backoff), the second adds fixed latency per shard
  attempt (exercising scatter-gather under slow shards, deadline budgets,
  and hedged reads), the third hangs an attempt until released or a
  ceiling elapses (exercising deadline-bounded abandonment of a hung
  shard);
- :class:`WorkerStall` — a server-layer injector plugged into
  :class:`~repro.server.WorkerPool`: stalls the first *K* executions
  before they start, exercising end-to-end deadline propagation through
  queue wait (a stalled worker consumes the request's admission-minted
  deadline, it does not re-arm it).

All injection is deterministic: faults trigger on call counts or
predicates, never on randomness, so CI failures reproduce.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro.errors import ParseError

#: The files making up a saved index directory, by part name.
INDEX_PARTS = {
    "corpus": "corpus.txt",
    "regions": "regions.json",
    "config": "config.json",
    "manifest": "manifest.json",
}


def truncate_file(path: str | Path, keep_bytes: int = 0) -> None:
    """Truncate ``path`` to its first ``keep_bytes`` bytes."""
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[:keep_bytes])


def corrupt_index_file(
    directory: str | Path, part: str = "regions", mode: str = "garbage"
) -> Path:
    """Damage one file of a saved index directory.

    ``part`` is one of ``"corpus"``, ``"regions"``, ``"config"``,
    ``"manifest"``; ``mode`` is:

    - ``"garbage"`` — overwrite a byte span in the middle with ``0xFF``
      (content changes, size preserved: only checksums catch it);
    - ``"truncate"`` — keep the first half (structure breaks);
    - ``"delete"`` — remove the file entirely.

    Returns the damaged path.
    """
    try:
        filename = INDEX_PARTS[part]
    except KeyError:
        raise ValueError(f"unknown index part {part!r} (one of {sorted(INDEX_PARTS)})")
    path = Path(directory) / filename
    if mode == "delete":
        path.unlink()
        return path
    data = path.read_bytes()
    if mode == "truncate":
        path.write_bytes(data[: len(data) // 2])
        return path
    if mode == "garbage":
        middle = len(data) // 2
        span = max(1, min(16, len(data) - middle))
        path.write_bytes(data[:middle] + b"\xff" * span + data[middle + span :])
        return path
    raise ValueError(f"unknown corruption mode {mode!r}")


class FlakySchema:
    """A structuring-schema wrapper injecting parse-time faults.

    Delegates everything to the wrapped schema; ``parse`` additionally

    - sleeps ``delay_s`` per call (slow-operator injection), and
    - raises :class:`ParseError` when ``fail_when(call_index, start, end)``
      returns true (mid-parse failure injection), where ``call_index``
      counts parse calls from 0.

    Use ``fail_calls={2, 5}`` as a shorthand for failing specific calls.
    """

    def __init__(
        self,
        schema: Any,
        fail_when: Callable[[int, int, int | None], bool] | None = None,
        fail_calls: set[int] | None = None,
        delay_s: float = 0.0,
    ) -> None:
        self._schema = schema
        self._fail_when = fail_when
        self._fail_calls = fail_calls if fail_calls is not None else set()
        self._delay_s = delay_s
        self.parse_calls = 0

    def __getattr__(self, name: str) -> Any:
        return getattr(self._schema, name)

    def parse(self, text, symbol=None, start=0, end=None, counters=None):
        call_index = self.parse_calls
        self.parse_calls += 1
        if self._delay_s:
            time.sleep(self._delay_s)
        if call_index in self._fail_calls or (
            self._fail_when is not None and self._fail_when(call_index, start, end)
        ):
            raise ParseError(
                f"injected fault on parse call {call_index}",
                position=start,
                symbol=symbol if symbol is not None else self._schema.grammar.start,
            )
        return self._schema.parse(
            text, symbol=symbol, start=start, end=end, counters=counters
        )


class TransientIOFault:
    """Fails the first ``k`` matching shard attempts with :class:`OSError`,
    then passes forever — the canonical *transient* failure.

    Used as a :class:`~repro.shard.ShardedEngine` ``fault_injector``: the
    engine invokes the injector with the shard name at the start of every
    attempt (retries included), so ``TransientIOFault(k=2)`` under a
    3-attempt retry policy fails twice and succeeds on the third try.
    ``shard`` restricts injection to one shard; ``None`` matches all.
    """

    def __init__(self, k: int, shard: str | None = None) -> None:
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k!r}")
        self.k = k
        self.shard = shard
        self.calls = 0
        self.failures = 0

    def __call__(self, shard: str | None = None) -> None:
        if self.shard is not None and shard != self.shard:
            return
        self.calls += 1
        if self.failures < self.k:
            self.failures += 1
            raise OSError(
                f"injected transient I/O fault ({self.failures}/{self.k})"
                + (f" on shard {shard!r}" if shard is not None else "")
            )


class SlowShard:
    """Delays every matching shard attempt by ``delay_s`` — deterministic
    scatter-gather slowness (one straggler must not stall healthy shards'
    results, and deadline budgets must fire per shard)."""

    def __init__(self, delay_s: float, shard: str | None = None) -> None:
        if delay_s < 0:
            raise ValueError(f"delay_s must be non-negative, got {delay_s!r}")
        self.delay_s = delay_s
        self.shard = shard
        self.calls = 0

    def __call__(self, shard: str | None = None) -> None:
        if self.shard is not None and shard != self.shard:
            return
        self.calls += 1
        time.sleep(self.delay_s)


class HungShard:
    """Hangs every matching shard attempt for up to ``hang_s`` — the
    canonical *stuck I/O* failure, which no retry or budget meter can
    interrupt from inside the attempt.

    Unlike a bare ``time.sleep`` the hang is *releasable*: the sharded
    engine calls :meth:`release` when it abandons a hung attempt at the
    request deadline, so the stuck thread wakes immediately, raises, and
    returns its pool slot instead of lingering for the full ceiling.
    """

    def __init__(self, hang_s: float, shard: str | None = None) -> None:
        if hang_s < 0:
            raise ValueError(f"hang_s must be non-negative, got {hang_s!r}")
        self.hang_s = hang_s
        self.shard = shard
        self.calls = 0
        self.released = threading.Event()

    def __call__(self, shard: str | None = None) -> None:
        if self.shard is not None and shard != self.shard:
            return
        self.calls += 1
        if self.released.wait(self.hang_s):
            raise OSError(
                f"hung attempt on shard {shard!r} released after abandonment"
            )

    def release(self) -> None:
        """Wake every hanging (and future) attempt; they fail fast."""
        self.released.set()


class WorkerStall:
    """Stalls the first ``k`` worker-pool executions by ``stall_s`` before
    the submitted callable runs (``k=None`` stalls every execution).

    Plugged into :class:`~repro.server.WorkerPool` as its
    ``fault_injector``; exercises end-to-end deadline semantics — the
    stall happens *after* admission, so it consumes the request's minted
    deadline rather than re-arming it.
    """

    def __init__(self, stall_s: float, k: int | None = None) -> None:
        if stall_s < 0:
            raise ValueError(f"stall_s must be non-negative, got {stall_s!r}")
        if k is not None and k < 0:
            raise ValueError(f"k must be non-negative, got {k!r}")
        self.stall_s = stall_s
        self.k = k
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self) -> None:
        with self._lock:
            self.calls += 1
            stall = self.k is None or self.calls <= self.k
        if stall:
            time.sleep(self.stall_s)


class SlowInstance:
    """A region-instance wrapper whose ``get`` sleeps ``delay_s`` per
    lookup — deterministic slowness for deadline-budget tests."""

    def __init__(self, instance: Any, delay_s: float) -> None:
        self._instance = instance
        self._delay_s = delay_s
        self.lookups = 0

    def __getattr__(self, name: str) -> Any:
        return getattr(self._instance, name)

    def __contains__(self, region_name: str) -> bool:
        return region_name in self._instance

    def get(self, region_name: str):
        self.lookups += 1
        time.sleep(self._delay_s)
        return self._instance.get(region_name)
