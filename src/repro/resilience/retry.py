"""Retry with capped, jittered exponential backoff.

Sharded execution treats a transient I/O failure (a shard file briefly
unreadable, an NFS hiccup mid-``open``) differently from a deterministic
one (a checksum mismatch): the former is worth a few more attempts, the
latter is not.  A :class:`RetryPolicy` declares how many attempts a call
gets and how long to wait between them — exponential backoff from
``base_delay_s``, capped at ``max_delay_s``, shrunk by a deterministic
jitter so concurrent shards do not retry in lockstep.

Determinism matters more here than entropy: the jitter source is an
injectable :class:`random.Random` (seeded by default), and the sleep
function is injectable too, so retry tests run in microseconds and CI
failures reproduce exactly.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

T = TypeVar("T")

#: Callback fired before each backoff sleep: (attempt, error, delay_s).
RetryCallback = Callable[[int, BaseException, float], None]


@dataclass(frozen=True)
class RetryPolicy:
    """How many attempts a call gets, and how long to back off between them.

    Attributes
    ----------
    max_attempts:
        Total attempts, the first call included (``1`` disables retrying).
    base_delay_s / multiplier / max_delay_s:
        Backoff before retry *k* (1-based) is
        ``min(base_delay_s * multiplier**(k-1), max_delay_s)``.
    jitter:
        Fraction of each delay randomly shaved off (``0.0`` – ``1.0``);
        jitter only ever *shrinks* a delay, so ``max_delay_s`` stays a
        true cap.
    retry_on:
        Exception classes considered transient.  Anything else propagates
        immediately — a checksum mismatch does not get better by waiting.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.01
    multiplier: float = 2.0
    max_delay_s: float = 0.25
    jitter: float = 0.5
    retry_on: tuple[type[BaseException], ...] = (OSError, TimeoutError)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts!r}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier!r}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be within [0, 1], got {self.jitter!r}")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """A single attempt, no backoff (retrying disabled)."""
        return cls(max_attempts=1, base_delay_s=0.0, jitter=0.0)

    def is_retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retry_on)

    def delay_s(self, attempt: int, rng: random.Random | None = None) -> float:
        """The backoff before retry ``attempt`` (1-based: the delay after
        the first failure is ``delay_s(1)``)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt!r}")
        raw = self.base_delay_s * (self.multiplier ** (attempt - 1))
        capped = min(raw, self.max_delay_s)
        if self.jitter and rng is not None:
            capped *= 1.0 - self.jitter * rng.random()
        return capped

    def describe(self) -> str:
        if self.max_attempts == 1:
            return "no retries"
        return (
            f"{self.max_attempts} attempts, backoff "
            f"{self.base_delay_s * 1e3:.0f}ms x{self.multiplier:g} "
            f"capped {self.max_delay_s * 1e3:.0f}ms, jitter {self.jitter:g}"
        )


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy | None = None,
    *,
    sleep: Callable[[float], Any] = time.sleep,
    rng: random.Random | None = None,
    on_retry: RetryCallback | None = None,
) -> tuple[T, int]:
    """Call ``fn`` under ``policy``; return ``(value, attempts)``.

    Only exceptions matching ``policy.retry_on`` are retried; the last
    failure (or any non-retryable one) propagates unchanged.  ``rng``
    defaults to a freshly seeded :class:`random.Random` so backoff jitter
    is deterministic run-to-run; ``sleep`` is injectable so tests pay no
    wall-clock cost.  ``on_retry(attempt, error, delay_s)`` fires before
    each backoff — sharded execution uses it to record ``shard-retried``
    warnings.
    """
    policy = policy if policy is not None else RetryPolicy()
    rng = rng if rng is not None else random.Random(0)
    attempts = 0
    while True:
        attempts += 1
        try:
            return fn(), attempts
        except policy.retry_on as error:
            if attempts >= policy.max_attempts:
                raise
            delay = policy.delay_s(attempts, rng)
            if on_retry is not None:
                on_retry(attempts, error, delay)
            if delay > 0:
                sleep(delay)
