"""Hierarchical query-pipeline tracing.

A :class:`Tracer` records one tree of :class:`Span` objects per query —
parse → translate → optimize → plan → index evaluation → candidate parsing
→ database instantiation — each span carrying wall-time plus a flat metric
dict (bytes scanned, regions produced, cache hits, ...).  The finished tree
is a :class:`Trace`, attached to every :class:`~repro.core.engine.QueryResult`
and exportable as JSON for the benchmark harness.

Design constraints, in order:

1. *Cheap when on.*  Tracing is enabled by default on every query, so a
   span costs two ``perf_counter`` calls, one small object, and one list
   append.  Hook callbacks run only when registered.
2. *Invisible when off.*  Pipeline code receives :data:`NULL_TRACER` when
   tracing is disabled and never branches on it — the null tracer's spans
   are shared no-op singletons.
3. *Self-describing.*  ``Trace.to_json()`` round-trips through
   ``Trace.from_json()`` so harnesses can persist and re-load traces.
"""

from __future__ import annotations

import json
from time import perf_counter
from typing import Any, Callable, Iterable, Iterator

#: Metric values are JSON scalars.
Metric = "int | float | str | bool"

SpanHook = Callable[["Span"], None]


class Span:
    """One timed pipeline stage: a name, a wall-clock interval, metrics,
    and child spans (sub-stages)."""

    __slots__ = ("name", "started_at", "ended_at", "metrics", "children")

    def __init__(
        self,
        name: str,
        started_at: float = 0.0,
        ended_at: float | None = None,
        metrics: dict[str, Any] | None = None,
        children: list["Span"] | None = None,
    ) -> None:
        self.name = name
        self.started_at = started_at
        self.ended_at = ended_at
        self.metrics = metrics if metrics is not None else {}
        self.children = children if children is not None else []

    @property
    def duration(self) -> float:
        """Elapsed wall-clock seconds (0.0 while the span is still open)."""
        if self.ended_at is None:
            return 0.0
        return self.ended_at - self.started_at

    def annotate(self, **metrics: Any) -> "Span":
        """Attach metrics to this span; later values overwrite earlier ones."""
        self.metrics.update(metrics)
        return self

    def add_child(self, name: str, duration: float = 0.0, **metrics: Any) -> "Span":
        """Append a synthesized child span (used to surface per-operator
        counter tallies, which have counts but no individually measured
        wall-time)."""
        child = Span(
            name,
            started_at=self.started_at,
            ended_at=self.started_at + duration,
            metrics=dict(metrics),
        )
        self.children.append(child)
        return child

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this span and its descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in pre-order, or ``None``."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def to_dict(self, origin: float | None = None) -> dict[str, Any]:
        """A JSON-ready dict.  Times are exported as an offset from
        ``origin`` (the trace start) plus a duration, both in seconds."""
        if origin is None:
            origin = self.started_at
        return {
            "name": self.name,
            "offset_s": self.started_at - origin,
            "duration_s": self.duration,
            "metrics": dict(self.metrics),
            "children": [child.to_dict(origin) for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any], origin: float = 0.0) -> "Span":
        started = origin + float(data["offset_s"])
        return cls(
            name=data["name"],
            started_at=started,
            ended_at=started + float(data["duration_s"]),
            metrics=dict(data.get("metrics", {})),
            children=[cls.from_dict(child, origin) for child in data.get("children", [])],
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.duration * 1e3:.3f}ms, {self.metrics})"


class Trace:
    """A finished span tree for one query.

    The stable export format (``to_dict``/``to_json``) is::

        {"name": ..., "offset_s": ..., "duration_s": ...,
         "metrics": {...}, "children": [...]}

    recursively, rooted at the ``"query"`` span.
    """

    __slots__ = ("root",)

    def __init__(self, root: Span) -> None:
        self.root = root

    @property
    def duration(self) -> float:
        return self.root.duration

    def spans(self) -> Iterator[Span]:
        """All spans, pre-order (pipeline order)."""
        return self.root.walk()

    def span_names(self) -> list[str]:
        return [span.name for span in self.spans()]

    def find(self, name: str) -> Span | None:
        return self.root.find(name)

    def stage_seconds(self) -> dict[str, float]:
        """Summed duration per span name — the per-stage budget view."""
        totals: dict[str, float] = {}
        for span in self.spans():
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
        return totals

    def to_dict(self) -> dict[str, Any]:
        return self.root.to_dict(origin=self.root.started_at)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Trace":
        return cls(Span.from_dict(data))

    @classmethod
    def from_json(cls, text: str) -> "Trace":
        return cls.from_dict(json.loads(text))

    def describe(self, unit: float = 1e3) -> str:
        """An indented per-stage timing table (milliseconds by default)."""
        lines: list[str] = []

        def render(span: Span, depth: int) -> None:
            extras = ", ".join(
                f"{key}={value}" for key, value in span.metrics.items()
            )
            suffix = f"  ({extras})" if extras else ""
            lines.append(
                f"{'  ' * depth}{span.name:<{max(1, 24 - 2 * depth)}}"
                f"{span.duration * unit:10.3f} ms{suffix}"
            )
            for child in span.children:
                render(child, depth + 1)

        render(self.root, 0)
        return "\n".join(lines)


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, *exc: object) -> None:
        self._tracer._close(self._span)


class Tracer:
    """Records one span tree.  Not thread-safe; one tracer serves one query."""

    __slots__ = ("root", "_stack", "_hooks")

    def __init__(self, name: str = "query", hooks: Iterable[SpanHook] = ()) -> None:
        self.root = Span(name, started_at=perf_counter())
        self._stack: list[Span] = [self.root]
        self._hooks = tuple(hooks)

    @property
    def current(self) -> Span:
        """The innermost open span."""
        return self._stack[-1]

    def span(self, name: str, **metrics: Any) -> _SpanContext:
        """Open a child span of the current span (use as a ``with`` target)."""
        span = Span(name, started_at=perf_counter(), metrics=metrics or None)
        self._stack[-1].children.append(span)
        self._stack.append(span)
        return _SpanContext(self, span)

    def annotate(self, **metrics: Any) -> None:
        """Attach metrics to the current span."""
        self._stack[-1].metrics.update(metrics)

    def _close(self, span: Span) -> None:
        span.ended_at = perf_counter()
        # Close any dangling descendants (an exception may have skipped
        # their __exit__ bodies before ours ran).
        while self._stack and self._stack[-1] is not span:
            self._stack.pop()
        if self._stack:
            self._stack.pop()
        for hook in self._hooks:
            hook(span)

    def finish(self) -> Trace:
        """Close every open span (root included) and freeze the trace."""
        while len(self._stack) > 1:
            self._close(self._stack[-1])
        if self.root.ended_at is None:
            self.root.ended_at = perf_counter()
            for hook in self._hooks:
                hook(self.root)
        self._stack = []
        return Trace(self.root)


class _NullSpan:
    """Shared do-nothing span, yielded by the null tracer."""

    __slots__ = ()

    def annotate(self, **metrics: Any) -> "_NullSpan":
        return self

    def add_child(self, name: str, duration: float = 0.0, **metrics: Any) -> "_NullSpan":
        return self


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc: object) -> None:
        return None


class NullTracer:
    """A tracer that records nothing.  Pipeline code always receives *some*
    tracer, so the hot path never branches on ``tracer is None``."""

    __slots__ = ()

    @property
    def current(self) -> _NullSpan:
        return _NULL_SPAN

    def span(self, name: str, **metrics: Any) -> _NullSpanContext:
        return _NULL_CONTEXT

    def annotate(self, **metrics: Any) -> None:
        return None

    def finish(self) -> None:
        return None


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()

#: The shared no-op tracer (safe to reuse: it holds no state).
NULL_TRACER = NullTracer()


def ensure_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """Normalize an optional tracer argument to a usable tracer."""
    return tracer if tracer is not None else NULL_TRACER
