"""EXPLAIN ANALYZE: estimated plan costs side-by-side with measured actuals.

``FileQueryEngine.analyze()`` executes a query with tracing on, re-runs the
plan's optimized region expression with per-node instrumentation, and
returns an :class:`Analysis`: for every plan node the static cost-model
estimate (:mod:`repro.core.cost`) next to the measured wall-time and
regions produced, plus the per-stage pipeline trace and the consolidated
query statistics.  ``str(analysis)`` renders the classic annotated-plan
text; :meth:`Analysis.to_dict` feeds the CLI's ``--json`` output (validated
in CI against ``schemas/analyze.schema.json``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.algebra.ast import (
    Inclusion,
    Innermost,
    Name,
    Outermost,
    RegionExpr,
    Select,
    SetOp,
)
from repro.algebra.evaluator import NodeRecord
from repro.core.cost import node_weight, static_cost
from repro.obs.stats import QueryStats
from repro.obs.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - core imports obs; annotations only
    from repro.core.planner import Plan

_OP_LABELS = {
    ">": "⊃",
    ">d": "⊃d",
    "<": "⊂",
    "<d": "⊂d",
    "union": "∪",
    "intersect": "∩",
    "difference": "−",
}


def node_label(node: RegionExpr) -> str:
    """A one-token operator label for a plan-node row."""
    if isinstance(node, Name):
        return node.region_name
    if isinstance(node, Select):
        marker = {"exact": "", "contains": "c", "prefix": "p", "prefix_contains": "pc"}
        return f"σ{marker.get(node.mode, '?')}[{node.word}]"
    if isinstance(node, Inclusion):
        return _OP_LABELS.get(node.op, node.op)
    if isinstance(node, SetOp):
        return _OP_LABELS.get(node.kind, node.kind)
    if isinstance(node, Innermost):
        return "ι"
    if isinstance(node, Outermost):
        return "ω"
    return type(node).__name__


@dataclass
class NodeAnalysis:
    """One plan-node row: the estimate next to what actually happened.

    ``estimated_rows`` is the cardinality estimate in *regions* — the same
    unit as ``actual_regions`` — so estimate-vs-actual deltas are
    rows-vs-rows, not cost-units-vs-rows (static cost units are only
    comparable to other static costs).
    """

    depth: int
    label: str
    expression: str
    estimated_cost: int
    estimated_subtree_cost: int
    estimated_rows: float | None = None
    actual_seconds: float | None = None
    actual_regions: int | None = None
    cached: bool | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "depth": self.depth,
            "label": self.label,
            "expression": self.expression,
            "estimated_cost": self.estimated_cost,
            "estimated_subtree_cost": self.estimated_subtree_cost,
            "estimated_rows": self.estimated_rows,
            "actual_s": self.actual_seconds,
            "actual_regions": self.actual_regions,
            "cached": self.cached,
        }


def build_node_table(
    expression: RegionExpr,
    node_log: dict[RegionExpr, NodeRecord] | None,
    estimator: "Callable[[RegionExpr], float] | None" = None,
) -> list[NodeAnalysis]:
    """Pre-order plan-node rows pairing each node's static estimate with
    its measured record (when the expression was instrumented).

    ``estimator`` maps a node to its estimated output cardinality in
    regions (the calibrated cost model's ``estimate_rows``); omitted, the
    rows carry no cardinality estimates.
    """
    rows: list[NodeAnalysis] = []

    def visit(node: RegionExpr, depth: int) -> None:
        record = node_log.get(node) if node_log is not None else None
        rows.append(
            NodeAnalysis(
                depth=depth,
                label=node_label(node),
                expression=str(node),
                estimated_cost=node_weight(node),
                estimated_subtree_cost=static_cost(node),
                estimated_rows=estimator(node) if estimator is not None else None,
                actual_seconds=record.elapsed if record is not None else None,
                actual_regions=record.regions if record is not None else None,
                cached=record.cached if record is not None else None,
            )
        )
        for child in node.children():
            visit(child, depth + 1)

    visit(expression, 0)
    return rows


@dataclass
class Analysis:
    """The full EXPLAIN ANALYZE report for one executed query."""

    plan: "Plan"
    stats: QueryStats
    nodes: list[NodeAnalysis] = field(default_factory=list)
    trace: Trace | None = None
    cache: str | None = None

    @property
    def strategy(self) -> str:
        return self.plan.strategy

    def render(self) -> str:
        plan = self.plan
        lines = [
            "EXPLAIN ANALYZE",
            f"query:     {plan.query.render()}",
            f"strategy:  {plan.strategy}  (exact={plan.exact})",
        ]
        if plan.raw_expression is not None:
            lines.append(
                f"translated: {plan.raw_expression}"
                f"  (est. cost {static_cost(plan.raw_expression)})"
            )
        if plan.optimized_expression is not None:
            lines.append(
                f"optimized:  {plan.optimized_expression}"
                f"  (est. cost {static_cost(plan.optimized_expression)})"
            )
        if plan.trace.rewrite_count:
            for line in plan.trace.describe().splitlines():
                lines.append(f"  rewrite: {line}")
        for note in plan.notes:
            lines.append(f"note:      {note}")
        if self.nodes:
            lines.append("")
            lines.append("plan nodes (estimated cost | measured):")
            lines.append("  est  subtree  est.rows     actual    regions  node")
            for row in self.nodes:
                est_rows = (
                    f"{row.estimated_rows:8.1f}"
                    if row.estimated_rows is not None
                    else "       –"
                )
                actual = (
                    f"{row.actual_seconds * 1e3:7.3f}ms"
                    if row.actual_seconds is not None
                    else "        –"
                )
                regions = (
                    f"{row.actual_regions:7d}"
                    if row.actual_regions is not None
                    else "      –"
                )
                cached = " (cached)" if row.cached else ""
                indent = "  " * row.depth
                lines.append(
                    f"  {row.estimated_cost:<4d} {row.estimated_subtree_cost:<7d} "
                    f"{est_rows}  {actual}  {regions}  {indent}{row.label}{cached}"
                )
        if self.trace is not None:
            lines.append("")
            lines.append("pipeline stages (measured):")
            lines.extend("  " + line for line in self.trace.describe().splitlines())
        lines.append("")
        lines.append("totals:")
        lines.extend("  " + line for line in self.stats.summary().splitlines())
        if self.cache:
            lines.append(f"cache:     {self.cache}")
        return "\n".join(lines)

    __str__ = render

    def to_dict(self) -> dict[str, Any]:
        """The stable JSON shape consumed by ``--json`` and CI's schema
        check: ``query``, ``strategy``, ``exact``, ``notes``,
        ``expression`` (raw/optimized or ``None``), ``nodes``, ``stages``
        (the span tree or ``None``), and ``stats``."""
        plan = self.plan
        return {
            "query": plan.query.render(),
            "strategy": plan.strategy,
            "exact": plan.exact,
            "notes": list(plan.notes),
            "expression": (
                {
                    "raw": str(plan.raw_expression)
                    if plan.raw_expression is not None
                    else None,
                    "optimized": str(plan.optimized_expression),
                    "estimated_cost": static_cost(plan.optimized_expression),
                    "rewrites": plan.trace.rewrite_count,
                }
                if plan.optimized_expression is not None
                else None
            ),
            "nodes": [row.to_dict() for row in self.nodes],
            "stages": self.trace.to_dict() if self.trace is not None else None,
            "stats": self.stats.to_dict(),
        }
