"""Query-pipeline observability: tracing, per-stage metrics, EXPLAIN ANALYZE.

The engine's cost story (index-only vs. candidate-parsing vs. full-scan,
Sections 5–7 of the paper) is only as credible as its instrumentation.
This package records, for every query, a hierarchical :class:`Trace` of the
pipeline — parse → translate → optimize (per-rewrite-rule spans) → plan →
index evaluation (per-algebra-operator spans) → candidate parsing →
database instantiation — with wall-time, bytes scanned/parsed, regions
produced, and cache hits per span:

- :mod:`repro.obs.trace` — :class:`Span`/:class:`Trace`/:class:`Tracer`
  plus the zero-cost :data:`NULL_TRACER` used when tracing is off;
- :mod:`repro.obs.hooks` — the opt-in span-hook registry
  (:class:`HookRegistry`, :class:`SpanCollector`) benchmarks use to assert
  stage-level budgets;
- :mod:`repro.obs.stats` — :class:`QueryStats`, the one facade over
  execution stats / algebra counters / cache activity with a stable
  ``to_dict()``;
- :mod:`repro.obs.analyze` — :class:`Analysis`, the EXPLAIN ANALYZE report
  pairing :mod:`repro.core.cost` estimates with measured actuals per node.
"""

from repro.obs.analyze import Analysis, NodeAnalysis, build_node_table, node_label
from repro.obs.hooks import HookRegistry, SpanCollector
from repro.obs.stats import QueryStats
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    SpanHook,
    Trace,
    Tracer,
    ensure_tracer,
)

__all__ = [
    "Analysis",
    "NodeAnalysis",
    "build_node_table",
    "node_label",
    "HookRegistry",
    "SpanCollector",
    "QueryStats",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanHook",
    "Trace",
    "Tracer",
    "ensure_tracer",
]
