"""Span-hook registry: opt-in callbacks fired when pipeline spans close.

Benchmarks register hooks to assert *stage-level* budgets ("index-eval must
stay under 2 ms at this corpus size") instead of only end-to-end times::

    collector = SpanCollector()
    remove = engine.on_span(collector)
    engine.query(...)
    remove()
    assert collector.total_seconds("candidate-parse") < 0.002

Hooks are deliberately engine-scoped, not global: two engines (e.g. a
cached and an uncached one in the same benchmark) must not observe each
other's spans.  When no hooks are registered the tracer carries an empty
tuple and the per-span cost is an empty loop.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

from repro.obs.trace import Span, SpanHook


class HookRegistry:
    """An ordered set of span hooks with O(1) deregistration handles."""

    __slots__ = ("_hooks", "_next_id")

    def __init__(self) -> None:
        self._hooks: dict[int, SpanHook] = {}
        self._next_id = 0

    def register(self, hook: SpanHook) -> "callable":
        """Add ``hook``; returns a zero-argument callable that removes it."""
        handle = self._next_id
        self._next_id += 1
        self._hooks[handle] = hook

        def remove() -> None:
            self._hooks.pop(handle, None)

        return remove

    def clear(self) -> None:
        self._hooks.clear()

    def __len__(self) -> int:
        return len(self._hooks)

    def __iter__(self) -> Iterator[SpanHook]:
        return iter(tuple(self._hooks.values()))

    def __bool__(self) -> bool:
        return bool(self._hooks)


class SpanCollector:
    """A ready-made hook that accumulates closed spans by name.

    Callable (register it directly); exposes per-stage totals for budget
    assertions.
    """

    def __init__(self) -> None:
        self.spans_by_name: dict[str, list[Span]] = defaultdict(list)

    def __call__(self, span: Span) -> None:
        self.spans_by_name[span.name].append(span)

    def count(self, name: str) -> int:
        return len(self.spans_by_name.get(name, ()))

    def total_seconds(self, name: str) -> float:
        return sum(span.duration for span in self.spans_by_name.get(name, ()))

    def names(self) -> list[str]:
        return sorted(self.spans_by_name)

    def reset(self) -> None:
        self.spans_by_name.clear()
