"""The unified per-query statistics facade.

Before this module the engine exposed three overlapping stats objects —
``ExecutionStats`` (per-query costs), ``OperationCounters`` (algebra work),
``CacheStats`` (engine-lifetime cache tallies) — each with its own shape.
:class:`QueryStats` consolidates the per-query view behind one object with
a documented, stable :meth:`QueryStats.to_dict` used by the CLI's
``--json`` output and the benchmark harness.

Every attribute of the wrapped :class:`~repro.core.partial.ExecutionStats`
remains reachable directly (``result.stats.strategy``,
``result.stats.bytes_parsed``, ...), so existing callers keep working.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.obs.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (core imports obs)
    from repro.core.partial import ExecutionStats


class QueryStats:
    """One query's costs: execution stats + algebra counters + per-query
    cache activity + the pipeline trace.

    Attributes
    ----------
    execution:
        The underlying :class:`ExecutionStats` (also reachable by attribute
        delegation: ``stats.strategy`` ≡ ``stats.execution.strategy``).
    trace:
        The hierarchical pipeline :class:`Trace`, or ``None`` when the
        engine ran with tracing disabled.
    """

    __slots__ = ("execution", "trace")

    def __init__(self, execution: "ExecutionStats", trace: Trace | None = None) -> None:
        self.execution = execution
        self.trace = trace

    def __getattr__(self, name: str) -> Any:
        # Only called when normal lookup fails: delegate to the execution
        # stats so the facade is a drop-in for the old `.stats` object.
        return getattr(self.execution, name)

    @property
    def algebra(self):
        """The algebra operation counters (one of the three legacy views)."""
        return self.execution.algebra

    @property
    def cache(self) -> dict[str, int]:
        """Per-query cache activity (hits/misses attributed to this query)."""
        execution = self.execution
        return {
            "expression_hits": execution.cache_expression_hits,
            "expression_misses": execution.cache_expression_misses,
            "parse_hits": execution.cache_parse_hits,
            "parse_misses": execution.cache_parse_misses,
            "bytes_parse_avoided": execution.bytes_parse_avoided,
        }

    @property
    def duration_seconds(self) -> float:
        """End-to-end wall time, from the trace (0.0 when untraced)."""
        return self.trace.duration if self.trace is not None else 0.0

    def to_dict(self) -> dict[str, Any]:
        """The stable JSON shape.  Documented keys (do not remove or rename;
        additions are allowed):

        - ``strategy``, ``rows``, ``candidate_regions``, ``result_regions``
        - ``bytes_parsed``, ``values_built``, ``objects_filtered_out``,
          ``join_bytes_compared``
        - ``algebra``: the flat operation-counter snapshot
          (``op:<symbol>`` keys plus ``comparisons``, ``regions_out``,
          ``bytes_scanned``)
        - ``cache``: per-query hit/miss/bytes-avoided dict
        - ``warnings``: structured non-fatal incidents, each a
          ``{code, message, detail}`` dict (degradations, skipped
          malformed regions)
        - ``replans``: mid-query adaptive re-planning records (empty when
          the plan ran to completion as chosen)
        - ``duration_s``: end-to-end seconds (0.0 when untraced)
        - ``trace``: the span tree (``None`` when untraced)
        """
        execution = self.execution
        return {
            "strategy": execution.strategy,
            "rows": execution.rows,
            "candidate_regions": execution.candidate_regions,
            "result_regions": execution.result_regions,
            "bytes_parsed": execution.bytes_parsed,
            "values_built": execution.values_built,
            "objects_filtered_out": execution.objects_filtered_out,
            "join_bytes_compared": execution.join_bytes_compared,
            "algebra": execution.algebra.snapshot(),
            "cache": self.cache,
            "warnings": [warning.to_dict() for warning in execution.warnings],
            "replans": [dict(record) for record in execution.replans],
            "duration_s": self.duration_seconds,
            "trace": self.trace.to_dict() if self.trace is not None else None,
        }

    def summary(self) -> str:
        """The human-readable multi-line summary (execution stats plus the
        traced wall time when available)."""
        text = self.execution.summary()
        if self.trace is not None:
            text += f"\nwall time:         {self.trace.duration * 1e3:.3f} ms"
        return text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryStats({self.execution.strategy!r}, rows={self.execution.rows})"
