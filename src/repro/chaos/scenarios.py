"""Named, seed-driven chaos scenarios.

Each scenario injects one fault family through a **named injection
point** — the same hooks production code exposes
(:mod:`repro.resilience.faults` injectors on the sharded engine and the
server worker pool, on-disk damage to saved indexes, malformed bodies at
the HTTP boundary) — then judges the faulted run with the
:mod:`~repro.chaos.oracle` against a healthy twin.

Determinism: every variable choice (victim shard, delay, corruption
mode, malformed payload) comes from the ``random.Random`` the harness
seeds per ``(scenario, backend, seed)``.  Same seed, same fault, same
verdict — a CI failure replays exactly with ``--seed N``.

The registry maps scenario name → :class:`Scenario`; the injection
points they exercise:

==============  =============================================  ==================
scenario        injection point                                backends
==============  =============================================  ==================
hang            shard fault injector (``HungShard``) /         solo, sharded
                zero-width deadline (solo)
slow            shard fault injector (``SlowShard``),          sharded
                hedged re-dispatch
transient-io    shard fault injector (``TransientIOFault``)    sharded
corrupt         on-disk index damage (``corrupt_index_file``)  solo, sharded
stale           source rewritten after indexing                solo, sharded
worker-stall    server pool injector (``WorkerStall``)         solo, sharded
overload        admission capacity exhaustion                  solo, sharded
drain           graceful-shutdown race                         solo, sharded
malformed-body  HTTP boundary (raw socket bodies)              solo, sharded
kill-mid-append torn write-ahead-journal frame on disk         sharded
torn-journal-   byte-level journal truncation / bit rot        sharded
tail
crash-mid-      ``LiveEngine`` crash hook between compaction   sharded
compaction      commit points
crash-mid-      ``LiveEngine`` crash hook between split        sharded
split           commit points
corrupt-one-    on-disk damage to one replica per shard,       sharded
replica         then scrub ``--repair``
corrupt-all-    on-disk damage to all but one replica,         sharded
but-one         anti-entropy re-seed from the survivor
kill-mid-       scrub crash hook between quarantine,           sharded
repair          peer-copy, and swap commit points
kill-mid-       ``LiveEngine`` append crash hook between       sharded
quorum-append   per-replica journal fsyncs
==============  =============================================  ==================

The four live-ingestion scenarios share one invariant, judged against a
from-scratch rebuild of the *logical* corpus (base text + acked
appends): after a crash at any named point, reopening recovers every
acked append and drops every unacked one — and once fully compacted, the
shard corpus files concatenate byte-for-byte to the logical corpus, so
double-applied or half-lost records cannot hide behind row projection.
"""

from __future__ import annotations

import json
import random
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, TYPE_CHECKING

from repro.chaos.oracle import Verdict
from repro.core.engine import FileQueryEngine
from repro.errors import (
    BudgetExceededError,
    IndexCorruptError,
    IndexNotFoundError,
    IndexStaleError,
)
from repro.resilience import (
    DegradationPolicy,
    HungShard,
    ResourceBudget,
    RetryPolicy,
    SlowShard,
    TransientIOFault,
    WorkerStall,
    corrupt_index_file,
)
from repro.shard import ShardedEngine, split_corpus

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.chaos.harness import Fixtures

#: Warning codes a degraded single-engine load may legitimately surface.
SOLO_DEGRADE_CODES = {
    "index-corrupt",
    "index-missing",
    "index-stale",
    "index-rebuilt",
    "degraded-full-scan",
}

N_SHARDS = 8


@dataclass(frozen=True)
class Scenario:
    """One registered chaos scenario."""

    name: str
    description: str
    injection: str
    backends: tuple[str, ...]
    run: Callable[["Fixtures", random.Random, str, Path], Verdict]


# -- engine-level scenarios ----------------------------------------------------


def _run_hang(fx: "Fixtures", rng: random.Random, backend: str, workdir: Path) -> Verdict:
    verdict = Verdict()
    if backend == "solo":
        # The solo engine has no I/O injector; a zero-width deadline is
        # the equivalent stuck-operator probe — the wall-clock guard must
        # convert "no progress" into a typed error, instantly.
        deadline = rng.choice([0.0, 0.001])
        engine = fx.solo_engine()
        started = perf_counter()
        error: BaseException | None = None
        try:
            engine.query(fx.query, budget=ResourceBudget(deadline_s=deadline))
        except Exception as caught:  # noqa: BLE001 — oracle judges the type
            error = caught
        verdict.typed_error(error, (BudgetExceededError,))
        verdict.bounded(perf_counter() - started, 1.0)
        return verdict

    victim = f"shard{rng.randrange(N_SHARDS)}"
    deadline = 0.25
    fault = HungShard(hang_s=30.0, shard=victim)
    engine = fx.sharded_engine(fault_injector=fault)
    started = perf_counter()
    result = engine.query(fx.query, budget=ResourceBudget(deadline_s=deadline))
    elapsed = perf_counter() - started
    codes = [w.code for w in result.warnings]
    # The acceptance bound: a hung shard returns a partial result in
    # under 2x the request deadline — never a hang.
    verdict.bounded(elapsed, 2 * deadline)
    verdict.rows_identical_or_flagged(result.canonical_rows(), fx.reference, codes)
    verdict.codes_include(codes, {"shard-timeout", "partial-result"})
    verdict.codes_within(codes, {"shard-timeout", "partial-result"})
    verdict.add(
        "hang-released",
        fault.released.is_set(),
        "abandonment released the hung attempt"
        if fault.released.is_set()
        else "hung attempt was never released",
    )
    return verdict


def _run_slow(fx: "Fixtures", rng: random.Random, backend: str, workdir: Path) -> Verdict:
    verdict = Verdict()
    victim = f"shard{rng.randrange(N_SHARDS)}"
    delay = rng.uniform(0.08, 0.15)
    hedged = rng.random() < 0.5
    engine = fx.sharded_engine(
        fault_injector=SlowShard(delay_s=delay, shard=victim),
        hedge_after_s=0.02 if hedged else None,
    )
    started = perf_counter()
    result = engine.query(fx.query)
    verdict.bounded(perf_counter() - started, 10.0)
    codes = [w.code for w in result.warnings]
    verdict.rows_identical_or_flagged(result.canonical_rows(), fx.reference, codes)
    verdict.codes_within(codes, {"shard-hedged"} if hedged else set())
    return verdict


def _run_transient(
    fx: "Fixtures", rng: random.Random, backend: str, workdir: Path
) -> Verdict:
    verdict = Verdict()
    victim = f"shard{rng.randrange(N_SHARDS)}"
    k = rng.choice([1, 2])
    fault = TransientIOFault(k=k, shard=victim)
    engine = fx.sharded_engine(
        fault_injector=fault,
        retry=RetryPolicy(max_attempts=3),
        retry_sleep=lambda seconds: None,
    )
    started = perf_counter()
    result = engine.query(fx.query)
    verdict.bounded(perf_counter() - started, 10.0)
    codes = [w.code for w in result.warnings]
    verdict.rows_identical_or_flagged(result.canonical_rows(), fx.reference, codes)
    verdict.codes_include(codes, {"shard-retried"})
    verdict.codes_within(codes, {"shard-retried"})
    verdict.add(
        "injector-consumed",
        fault.failures == k,
        f"injector failed {fault.failures}/{k} time(s)",
    )
    return verdict


def _run_corrupt(
    fx: "Fixtures", rng: random.Random, backend: str, workdir: Path
) -> Verdict:
    verdict = Verdict()
    if backend == "solo":
        directory = workdir / "solo-idx"
        fx.solo_engine().save(str(directory))
        part = rng.choice(["regions", "corpus", "config", "manifest"])
        mode = rng.choice(["garbage", "truncate", "delete"])
        corrupt_index_file(directory, part=part, mode=mode)
        started = perf_counter()
        try:
            engine = FileQueryEngine.from_saved(fx.schema, str(directory))
        except (IndexCorruptError, IndexNotFoundError) as caught:
            # Unrecoverable damage (untrustworthy corpus bytes, missing
            # config) is a typed refusal at load time — never a wrong
            # answer, never an untyped crash.
            verdict.typed_error(caught, (IndexCorruptError, IndexNotFoundError))
            verdict.bounded(perf_counter() - started, 10.0)
            return verdict
        result = engine.query(fx.query)
        verdict.bounded(perf_counter() - started, 10.0)
        codes = [w.code for w in result.warnings]
        # Degradation must preserve the answer: a damaged index is never
        # an excuse for wrong rows.
        verdict.rows_identical_or_flagged(result.canonical_rows(), fx.reference, codes)
        verdict.codes_within(codes, SOLO_DEGRADE_CODES)
        return verdict

    directory = workdir / "sharded-idx"
    fx.sharded_engine().save(directory)
    victim = rng.randrange(N_SHARDS)
    part = rng.choice(["corpus", "regions"])
    victim_dir = sorted((directory / "shards").iterdir())[victim]
    if part == "corpus":
        # Unrecoverable: no trustworthy text to full-scan — the shard
        # must fail in isolation and the loss must be flagged.
        (victim_dir / "corpus.txt").write_text("garbage", encoding="utf-8")
    else:
        corrupt_index_file(victim_dir, part="regions", mode="garbage")
    engine = ShardedEngine.from_saved(fx.schema, directory)
    started = perf_counter()
    result = engine.query(fx.query)
    verdict.bounded(perf_counter() - started, 10.0)
    codes = [w.code for w in result.warnings]
    verdict.rows_identical_or_flagged(result.canonical_rows(), fx.reference, codes)
    verdict.codes_within(
        codes, SOLO_DEGRADE_CODES | {"shard-failed", "partial-result"}
    )
    return verdict


def _run_stale(
    fx: "Fixtures", rng: random.Random, backend: str, workdir: Path
) -> Verdict:
    from repro.workloads.bibtex import generate_bibtex

    verdict = Verdict()
    rewrite = generate_bibtex(entries=3, seed=rng.randrange(1_000_000))
    if backend == "solo":
        source = workdir / "refs.bib"
        source.write_text(fx.text, encoding="utf-8")
        directory = workdir / "solo-idx"
        fx.solo_engine().save(str(directory), source_path=source)
        source.write_text(rewrite, encoding="utf-8")
        started = perf_counter()
        error: BaseException | None = None
        try:
            FileQueryEngine.from_saved(
                fx.schema,
                str(directory),
                policy=DegradationPolicy.strict(),
                source_path=source,
            ).query(fx.query)
        except Exception as caught:  # noqa: BLE001 — oracle judges the type
            error = caught
        verdict.typed_error(error, (IndexStaleError,))
        verdict.bounded(perf_counter() - started, 10.0)
        return verdict

    parts = split_corpus(fx.schema, fx.text, N_SHARDS)
    sources = []
    for number, part in enumerate(parts):
        path = workdir / f"part{number}.bib"
        path.write_text(part, encoding="utf-8")
        sources.append(path)
    directory = workdir / "sharded-idx"
    ShardedEngine.from_paths(fx.schema, sources).save(directory)
    sources[rng.randrange(N_SHARDS)].write_text(rewrite, encoding="utf-8")
    engine = ShardedEngine.from_saved(fx.schema, directory)
    started = perf_counter()
    result = engine.query(fx.query)
    verdict.bounded(perf_counter() - started, 10.0)
    codes = [w.code for w in result.warnings]
    # The stale shard re-answers (degraded) from its *current* source, so
    # rows may legitimately differ from the pre-rewrite twin; the
    # invariant is visibility, not identity: staleness must be flagged
    # and every shard must still answer.
    verdict.codes_include(codes, {"index-stale"})
    verdict.add(
        "all-shards-answer",
        result.stats.healthy_shards == N_SHARDS,
        f"{result.stats.healthy_shards}/{N_SHARDS} shard(s) answered",
    )
    return verdict


# -- server-level scenarios ----------------------------------------------------


def _wire_rows(payload: dict[str, Any]) -> set[tuple]:
    return {tuple(row) for row in payload.get("rows", [])}


def _run_worker_stall(
    fx: "Fixtures", rng: random.Random, backend: str, workdir: Path
) -> Verdict:
    from repro.server import QueryServerApp, ServerConfig

    verdict = Verdict()
    healthy_app = QueryServerApp(fx.backend(backend))
    status, payload = healthy_app.handle("POST", "/query", {"query": fx.query})
    healthy_rows = _wire_rows(payload)
    healthy_app.close()

    stall = rng.uniform(0.3, 0.4)
    app = QueryServerApp(
        fx.backend(backend),
        ServerConfig(workers=2, budget=ResourceBudget(deadline_s=0.15)),
    )
    app.pool.fault_injector = WorkerStall(stall_s=stall, k=1)
    started = perf_counter()
    status, payload = app.handle("POST", "/query", {"query": fx.query})
    elapsed = perf_counter() - started
    # The stall consumed the admission-minted deadline: the request must
    # fail *typed* (budget-exceeded, or shard-failed when every shard's
    # window expired) — never succeed as if the clock restarted.
    verdict.envelope_error(
        status, payload, {429, 503}, {"budget-exceeded", "shard-failed"}
    )
    verdict.bounded(elapsed, stall + 2.0)
    status, payload = app.handle("POST", "/query", {"query": fx.query})
    verdict.add(
        "recovers",
        status == 200 and _wire_rows(payload) == healthy_rows,
        f"post-stall request: status {status}, rows "
        + ("identical" if _wire_rows(payload) == healthy_rows else "DIFFER"),
    )
    app.close()
    return verdict


def _run_overload(
    fx: "Fixtures", rng: random.Random, backend: str, workdir: Path
) -> Verdict:
    from repro.server import QueryServerApp, ServerConfig

    verdict = Verdict()
    app = QueryServerApp(fx.backend(backend), ServerConfig(workers=1, queue_depth=0))
    status, payload = app.handle("POST", "/query", {"query": fx.query})
    healthy_rows = _wire_rows(payload)
    verdict.add("warmup", status == 200, f"warm-up request: status {status}")

    app.pool.fault_injector = WorkerStall(stall_s=0.4, k=1)
    occupied: list[tuple[int, dict[str, Any]]] = []
    holder = threading.Thread(
        target=lambda: occupied.append(
            app.handle("POST", "/query", {"query": fx.query})
        )
    )
    holder.start()
    time.sleep(0.15)  # the holder is mid-stall: capacity is exhausted
    status, payload = app.handle("POST", "/query", {"query": fx.query})
    holder.join()
    verdict.envelope_error(status, payload, {429}, {"server-overloaded"})
    retry_after = payload.get("error", {}).get("detail", {}).get("retry_after_s")
    admission_hint = (
        payload.get("error", {})
        .get("detail", {})
        .get("admission", {})
        .get("retry_after_s")
    )
    verdict.add(
        "retry-after",
        retry_after is not None and admission_hint is not None,
        f"429 carries retry_after_s={retry_after} "
        f"(admission snapshot: {admission_hint})",
    )
    held_status, held_payload = occupied[0]
    verdict.add(
        "in-flight-survives",
        held_status == 200 and _wire_rows(held_payload) == healthy_rows,
        f"the stalled-but-admitted request finished: status {held_status}",
    )
    status, payload = app.handle("POST", "/query", {"query": fx.query})
    verdict.add(
        "recovers",
        status == 200 and _wire_rows(payload) == healthy_rows,
        f"post-burst request: status {status}",
    )
    app.close()
    return verdict


def _run_drain(
    fx: "Fixtures", rng: random.Random, backend: str, workdir: Path
) -> Verdict:
    from repro.server import QueryServerApp, ServerConfig

    verdict = Verdict()
    app = QueryServerApp(
        fx.backend(backend), ServerConfig(workers=1, drain_deadline_s=5.0)
    )
    status, payload = app.handle("POST", "/query", {"query": fx.query})
    healthy_rows = _wire_rows(payload)
    app.pool.fault_injector = WorkerStall(stall_s=0.3, k=1)
    in_flight: list[tuple[int, dict[str, Any]]] = []
    holder = threading.Thread(
        target=lambda: in_flight.append(
            app.handle("POST", "/query", {"query": fx.query})
        )
    )
    holder.start()
    time.sleep(0.1)  # the request is mid-execution when the drain begins
    app.start_draining()
    status, payload = app.handle("POST", "/query", {"query": fx.query})
    verdict.envelope_error(status, payload, {503}, {"server-draining"})
    verdict.add(
        "retry-after",
        payload.get("error", {}).get("detail", {}).get("retry_after_s") is not None,
        "draining 503 carries retry_after_s",
    )
    status, payload = app.handle("GET", "/healthz", None)
    verdict.add(
        "healthz-draining",
        payload.get("status") == "draining",
        f"healthz reports {payload.get('status')!r}",
    )
    started = perf_counter()
    drained = app.drain()
    verdict.add(
        "drained-in-time",
        drained,
        f"drain finished in {perf_counter() - started:.3f}s"
        if drained
        else "drain deadline expired with work still running",
    )
    holder.join()
    held_status, held_payload = in_flight[0]
    verdict.add(
        "in-flight-completes",
        held_status == 200 and _wire_rows(held_payload) == healthy_rows,
        f"the in-flight request finished during the drain: status {held_status}",
    )
    return verdict


# -- live-ingestion crash scenarios --------------------------------------------


class SimulatedCrash(RuntimeError):
    """Raised by a chaos crash hook to abandon a live-engine operation at
    a named point, exactly as SIGKILL would — nothing after the raise
    runs, and recovery happens on the next :meth:`LiveEngine.open`."""


#: Codes a post-crash reopen may legitimately surface.
LIVE_RECOVERY_CODES = {
    "delta-replayed",
    "stale-staging-removed",
    "shard-split",
}


def _live_setup(
    fx: "Fixtures", rng: random.Random, workdir: Path
) -> tuple[Path, list[str]]:
    """A saved sharded index plus deterministic self-delimiting records to
    append (drawn from the scenario RNG, so every seed ingests a different
    batch)."""
    from repro.workloads.bibtex import generate_bibtex

    directory = workdir / "live-idx"
    fx.sharded_engine().save(directory)
    extra = generate_bibtex(
        entries=rng.randrange(3, 6), seed=rng.randrange(1_000_000)
    )
    tree = fx.schema.parse(extra)
    records = [extra[child.start : child.end] + "\n\n" for child in tree.children]
    return directory, records


def _tail_journal(directory: Path) -> Path:
    from repro.shard.manifest import load_shard_manifest

    entry = load_shard_manifest(directory).shards[-1]
    return directory / "wal" / f"{Path(entry.directory).name}.wal"


def _rebuild_rows(fx: "Fixtures", logical: str) -> set[tuple]:
    return FileQueryEngine(fx.schema, logical).query(fx.query).canonical_rows()


def _verify_compacted_corpus(
    verdict: Verdict, fx: "Fixtures", directory: Path, logical: str
) -> None:
    """The strongest oracle: after a full compaction, the shard corpus
    files must concatenate byte-for-byte to the logical corpus — row
    projection cannot hide a double-applied or half-lost record from
    this check."""
    from repro.index.persist import is_replicated_index, replica_directories
    from repro.live import LiveEngine
    from repro.shard.manifest import load_shard_manifest

    live = LiveEngine.open(fx.schema, directory)
    live.compact()
    live.close()
    pieces: list[str] = []
    replicas_agree = True
    for entry in load_shard_manifest(directory).shards:
        shard_dir = directory / entry.directory
        if is_replicated_index(shard_dir):
            copies = [
                (replica / "corpus.txt").read_text(encoding="utf-8")
                for replica in replica_directories(shard_dir)
            ]
            replicas_agree = replicas_agree and all(c == copies[0] for c in copies)
            pieces.append(copies[0])
        else:
            pieces.append(
                (shard_dir / "corpus.txt").read_text(encoding="utf-8")
            )
    stored = "".join(pieces)
    verdict.add(
        "corpus-byte-identical",
        stored == logical and replicas_agree,
        "compacted shard corpora concatenate to the logical corpus"
        if stored == logical and replicas_agree
        else "replica corpora disagree after compaction"
        if not replicas_agree
        else f"compacted corpus diverged ({len(stored)} vs {len(logical)} bytes)",
    )


def _run_kill_mid_append(
    fx: "Fixtures", rng: random.Random, backend: str, workdir: Path
) -> Verdict:
    from repro.live import LiveEngine, encode_frame

    verdict = Verdict()
    directory, records = _live_setup(fx, rng, workdir)
    live = LiveEngine.open(fx.schema, directory)
    acked = [live.append(record) for record in records[:-1]]
    live.close()
    # The process dies mid-write of the final (never-acked) frame: a
    # random prefix of its bytes reaches the journal.
    frame = encode_frame(acked[-1] + 1, records[-1])
    cut = rng.randrange(1, len(frame))
    with open(_tail_journal(directory), "ab") as handle:
        handle.write(frame[:cut])

    started = perf_counter()
    reopened = LiveEngine.open(fx.schema, directory)
    result = reopened.query(fx.query)
    verdict.bounded(perf_counter() - started, 30.0)
    codes = [w.code for w in result.warnings]
    acked_logical = fx.text + "".join(records[:-1])
    verdict.rows_identical_or_flagged(
        result.canonical_rows(), _rebuild_rows(fx, acked_logical), codes
    )
    verdict.codes_include(codes, {"delta-replayed"})
    verdict.codes_within(codes, LIVE_RECOVERY_CODES)
    # The torn tail was truncated, so the retry lands cleanly with the
    # next sequence number and completes the batch.
    retry_seq = reopened.append(records[-1])
    verdict.add(
        "retry-succeeds",
        retry_seq == acked[-1] + 1,
        f"retried append acked with seq {retry_seq} "
        f"(expected {acked[-1] + 1})",
    )
    result = reopened.query(fx.query)
    reopened.close()
    logical = fx.text + "".join(records)
    verdict.rows_identical_or_flagged(
        result.canonical_rows(), _rebuild_rows(fx, logical), []
    )
    _verify_compacted_corpus(verdict, fx, directory, logical)
    return verdict


def _run_torn_journal_tail(
    fx: "Fixtures", rng: random.Random, backend: str, workdir: Path
) -> Verdict:
    import struct

    from repro.errors import JournalCorruptError
    from repro.live import LiveEngine, encode_frame

    verdict = Verdict()
    directory, records = _live_setup(fx, rng, workdir)
    live = LiveEngine.open(fx.schema, directory)
    for record in records:
        live.append(record)
    live.close()
    journal = _tail_journal(directory)
    data = journal.read_bytes()
    logical = fx.text + "".join(records)

    if rng.random() < 0.5:
        # Torn tail: an unacked frame cut at a random byte — inside the
        # header, exactly after it, or mid-payload — must truncate away.
        extra = encode_frame(len(records) + 1, records[rng.randrange(len(records))])
        journal.write_bytes(data + extra[: rng.randrange(1, len(extra))])
        started = perf_counter()
        reopened = LiveEngine.open(fx.schema, directory)
        result = reopened.query(fx.query)
        reopened.close()
        verdict.bounded(perf_counter() - started, 30.0)
        codes = [w.code for w in result.warnings]
        verdict.rows_identical_or_flagged(
            result.canonical_rows(), _rebuild_rows(fx, logical), codes
        )
        verdict.codes_include(codes, {"delta-replayed"})
        verdict.codes_within(codes, LIVE_RECOVERY_CODES)
        # Repair truncated the torn bytes on disk: a second reopen sees a
        # clean journal (replayed frames, no torn tail).
        again = LiveEngine.open(fx.schema, directory)
        torn_again = any(
            w.detail.get("torn_bytes") for w in again.query(fx.query).warnings
        )
        again.close()
        verdict.add(
            "tail-repaired",
            not torn_again,
            "second reopen found a clean journal"
            if not torn_again
            else "torn tail survived the repair",
        )
        _verify_compacted_corpus(verdict, fx, directory, logical)
        return verdict

    # In-place bit rot inside a fully present, *acked* frame: truncation
    # cannot explain it, so replay must refuse with a typed error rather
    # than silently drop acked data.
    (first_length,) = struct.unpack(">I", data[:4])
    offset = 8 + rng.randrange(first_length)
    flipped = data[:offset] + bytes([data[offset] ^ 0xFF]) + data[offset + 1 :]
    journal.write_bytes(flipped)
    started = perf_counter()
    error: BaseException | None = None
    try:
        LiveEngine.open(fx.schema, directory)
    except Exception as caught:  # noqa: BLE001 — oracle judges the type
        error = caught
    verdict.typed_error(error, (JournalCorruptError,))
    verdict.bounded(perf_counter() - started, 30.0)
    return verdict


def _run_crash_mid_compaction(
    fx: "Fixtures", rng: random.Random, backend: str, workdir: Path
) -> Verdict:
    from repro.live import LiveEngine

    verdict = Verdict()
    directory, records = _live_setup(fx, rng, workdir)
    point = rng.choice(["compact:shard-saved", "compact:manifest-updated"])

    def crash_hook(name: str) -> None:
        if name == point:
            raise SimulatedCrash(name)

    live = LiveEngine.open(fx.schema, directory, crash_hook=crash_hook)
    for record in records:
        live.append(record)
    crashed = False
    try:
        live.compact()
    except SimulatedCrash:
        crashed = True
    live.close()
    verdict.add(
        "crash-injected", crashed, f"compaction crashed at {point!r}"
        if crashed
        else f"crash hook never fired at {point!r}",
    )

    started = perf_counter()
    reopened = LiveEngine.open(fx.schema, directory)
    result = reopened.query(fx.query)
    reopened.close()
    verdict.bounded(perf_counter() - started, 30.0)
    codes = [w.code for w in result.warnings]
    logical = fx.text + "".join(records)
    verdict.rows_identical_or_flagged(
        result.canonical_rows(), _rebuild_rows(fx, logical), codes
    )
    verdict.codes_within(codes, LIVE_RECOVERY_CODES)
    _verify_compacted_corpus(verdict, fx, directory, logical)
    return verdict


def _run_crash_mid_split(
    fx: "Fixtures", rng: random.Random, backend: str, workdir: Path
) -> Verdict:
    from repro.live import LiveEngine

    verdict = Verdict()
    directory, records = _live_setup(fx, rng, workdir)
    point = rng.choice(["split:shards-saved", "split:manifest-updated"])

    def crash_hook(name: str) -> None:
        if name == point:
            raise SimulatedCrash(name)

    # A 1-byte budget guarantees the freshly folded tail shard overflows
    # and the compaction proceeds into the split lifecycle.
    live = LiveEngine.open(
        fx.schema, directory, max_shard_bytes=1, crash_hook=crash_hook
    )
    for record in records:
        live.append(record)
    crashed = False
    try:
        live.compact()
    except SimulatedCrash:
        crashed = True
    live.close()
    verdict.add(
        "crash-injected", crashed, f"split crashed at {point!r}"
        if crashed
        else f"crash hook never fired at {point!r}",
    )

    started = perf_counter()
    reopened = LiveEngine.open(fx.schema, directory)
    result = reopened.query(fx.query)
    reopened.close()
    verdict.bounded(perf_counter() - started, 30.0)
    codes = [w.code for w in result.warnings]
    logical = fx.text + "".join(records)
    verdict.rows_identical_or_flagged(
        result.canonical_rows(), _rebuild_rows(fx, logical), codes
    )
    verdict.codes_within(codes, LIVE_RECOVERY_CODES)
    _verify_compacted_corpus(verdict, fx, directory, logical)
    return verdict


#: Malformed HTTP bodies: (label, raw bytes).  Every one must come back
#: as a structured 4xx envelope, never a 500 and never a hang.
MALFORMED_BODIES = [
    ("truncated-json", b'{"query": "SELECT'),
    ("not-json", b"\xff\xfe garbage \x00"),
    ("json-array", b'["SELECT r FROM Reference r"]'),
    ("json-scalar", b'"just a string"'),
    ("missing-query", b"{}"),
    ("wrong-types", b'{"query": 42}'),
    ("bad-budget", b'{"query": "SELECT r FROM Reference r", "budget": "fast"}'),
    ("bad-cursor", b'{"query": "SELECT r FROM Reference r", "cursor": "zzz"}'),
]


# -- replication scenarios -----------------------------------------------------


def _replicated_setup(
    fx: "Fixtures", workdir: Path, replicas: int
) -> tuple[Path, list[Path]]:
    """A saved sharded index with N complete copies per shard, plus the
    per-shard directories for fault injection."""
    from repro.shard.manifest import load_shard_manifest

    directory = workdir / "replicated-idx"
    fx.sharded_engine().save(directory, replicas=replicas)
    manifest = load_shard_manifest(directory)
    return directory, [directory / entry.directory for entry in manifest.shards]


def _damage_replica(rng: random.Random, replica_dir: Path) -> None:
    """One randomly chosen corruption against one replica copy."""
    part = rng.choice(["corpus", "regions", "config"])
    mode = rng.choice(["garbage", "truncate", "delete"])
    corrupt_index_file(replica_dir, part=part, mode=mode)


def _judge_replicated_read(
    verdict: Verdict, fx: "Fixtures", directory: Path, require_failover: bool
) -> None:
    """Query the damaged index: rows must be byte-identical (no partial
    result — a healthy sibling answers for every shard), flagged with
    ``replica-failover`` when damage was routed around."""
    engine = ShardedEngine.from_saved(fx.schema, directory)
    started = perf_counter()
    result = engine.query(fx.query)
    verdict.bounded(perf_counter() - started, 30.0)
    codes = [w.code for w in result.warnings]
    rows = result.canonical_rows()
    verdict.add(
        "rows-byte-identical",
        rows == fx.reference,
        "every shard answered from a healthy replica"
        if rows == fx.reference
        else f"rows diverged from the healthy twin "
        f"({len(rows)} vs {len(fx.reference)})",
    )
    if require_failover:
        verdict.codes_include(codes, {"replica-failover"})
    verdict.codes_within(codes, {"replica-failover"})


def _judge_scrub_heals(
    verdict: Verdict, fx: "Fixtures", directory: Path
) -> None:
    """Anti-entropy: one repair pass heals, the next pass finds nothing."""
    from repro.shard.scrub import scrub_index

    report = scrub_index(fx.schema, directory, repair=True)
    verdict.add(
        "repair-completes",
        not report.unrepaired,
        f"{len(report.repairs)} repair action(s), none unrepairable"
        if not report.unrepaired
        else f"{len(report.unrepaired)} replica(s) unrepairable",
    )
    second = scrub_index(fx.schema, directory)
    verdict.add(
        "second-pass-clean",
        second.clean,
        "post-repair scrub found zero findings"
        if second.clean
        else f"post-repair scrub still sees {len(second.findings)} finding(s)",
    )
    _judge_replicated_read(verdict, fx, directory, require_failover=False)


def _run_corrupt_one_replica(
    fx: "Fixtures", rng: random.Random, backend: str, workdir: Path
) -> Verdict:
    from repro.index.persist import replica_dir_name

    verdict = Verdict()
    directory, shard_dirs = _replicated_setup(fx, workdir, replicas=2)
    for shard_dir in shard_dirs:
        _damage_replica(rng, shard_dir / replica_dir_name(rng.randrange(2)))
    _judge_replicated_read(verdict, fx, directory, require_failover=True)
    _judge_scrub_heals(verdict, fx, directory)
    return verdict


def _run_corrupt_all_but_one(
    fx: "Fixtures", rng: random.Random, backend: str, workdir: Path
) -> Verdict:
    from repro.index.persist import replica_dir_name

    verdict = Verdict()
    directory, shard_dirs = _replicated_setup(fx, workdir, replicas=3)
    for shard_dir in shard_dirs:
        survivor = rng.randrange(3)
        for index in range(3):
            if index != survivor:
                _damage_replica(rng, shard_dir / replica_dir_name(index))
    _judge_replicated_read(verdict, fx, directory, require_failover=True)
    _judge_scrub_heals(verdict, fx, directory)
    return verdict


def _run_kill_mid_repair(
    fx: "Fixtures", rng: random.Random, backend: str, workdir: Path
) -> Verdict:
    from repro.core.engine import FileQueryEngine as _Engine
    from repro.index.persist import replica_dir_name
    from repro.resilience import DegradationPolicy
    from repro.shard.scrub import scrub_index

    verdict = Verdict()
    directory, shard_dirs = _replicated_setup(fx, workdir, replicas=2)
    victim_shard = shard_dirs[rng.randrange(len(shard_dirs))]
    healthy_name = replica_dir_name(rng.randrange(2))
    victim_name = replica_dir_name(1 - int(healthy_name[-1]))
    _damage_replica(rng, victim_shard / victim_name)
    point = rng.choice(["scrub:quarantined", "scrub:peer-copied", "scrub:repaired"])

    def crash_hook(name: str) -> None:
        if name == point:
            raise SimulatedCrash(name)

    crashed = False
    try:
        scrub_index(fx.schema, directory, repair=True, crash_hook=crash_hook)
    except SimulatedCrash:
        crashed = True
    verdict.add(
        "crash-injected",
        crashed,
        f"repair crashed at {point!r}"
        if crashed
        else f"crash hook never fired at {point!r}",
    )
    # The invariant the repair protocol exists for: whatever the crash
    # point, the last healthy copy is still on disk and loadable.
    survivor_ok = True
    try:
        _Engine.from_saved(
            fx.schema,
            str(victim_shard / healthy_name),
            policy=DegradationPolicy.strict(),
        )
    except Exception as error:  # noqa: BLE001 — oracle judges the outcome
        survivor_ok = False
        verdict.add(
            "healthy-replica-survives",
            False,
            f"last healthy replica lost mid-repair: {error}",
        )
    if survivor_ok:
        verdict.add(
            "healthy-replica-survives",
            True,
            f"{healthy_name} still verifies after the crash",
        )
    # A re-run finishes the interrupted repair, and the next pass is clean.
    _judge_scrub_heals(verdict, fx, directory)
    return verdict


def _run_kill_mid_quorum_append(
    fx: "Fixtures", rng: random.Random, backend: str, workdir: Path
) -> Verdict:
    from repro.live import LiveEngine
    from repro.workloads.bibtex import generate_bibtex

    verdict = Verdict()
    directory, _ = _replicated_setup(fx, workdir, replicas=2)
    extra = generate_bibtex(
        entries=rng.randrange(3, 6), seed=rng.randrange(1_000_000)
    )
    tree = fx.schema.parse(extra)
    records = [extra[child.start : child.end] + "\n\n" for child in tree.children]

    # The process dies after replica journal 0 fsynced the frame but
    # before journal 1 saw it: the widest quorum-split window.
    armed = {"on": False}

    def crash_hook(name: str) -> None:
        if armed["on"] and name == "append:journal-acked:0":
            raise SimulatedCrash(name)

    live = LiveEngine.open(fx.schema, directory, crash_hook=crash_hook)
    for record in records[:-1]:
        live.append(record)
    armed["on"] = True
    crashed = False
    try:
        live.append(records[-1])
    except SimulatedCrash:
        crashed = True
    live.close()
    verdict.add(
        "crash-injected", crashed, "append crashed between replica journals"
        if crashed
        else "crash hook never fired",
    )

    # The frame is durable on journal 0, so recovery promotes it to every
    # replica journal: the un-acked append IS the recovered state here
    # (exactly why retries carry request ids).
    started = perf_counter()
    reopened = LiveEngine.open(fx.schema, directory)
    result = reopened.query(fx.query)
    verdict.bounded(perf_counter() - started, 30.0)
    codes = [w.code for w in result.warnings]
    logical = fx.text + "".join(records)
    verdict.rows_identical_or_flagged(
        result.canonical_rows(), _rebuild_rows(fx, logical), codes
    )
    verdict.codes_within(codes, LIVE_RECOVERY_CODES | {"replica-failover"})
    # An idempotent retry of the in-doubt record dedupes instead of
    # double-appending — but only when the client tagged it; here the
    # recovered seq must simply not be reissued.
    next_seq = reopened.append_record(records[0], request_id="chaos-retry")["seq"]
    verdict.add(
        "seq-not-reissued",
        next_seq == len(records) + 1,
        f"next append took seq {next_seq} (expected {len(records) + 1})",
    )
    reopened.close()
    _verify_compacted_corpus(verdict, fx, directory, logical + records[0])
    return verdict


def _run_malformed_body(
    fx: "Fixtures", rng: random.Random, backend: str, workdir: Path
) -> Verdict:
    from repro.server import QueryServer, ServerConfig

    verdict = Verdict()
    bodies = rng.sample(MALFORMED_BODIES, 4)
    server = QueryServer(fx.backend(backend), ServerConfig(port=0))
    with server:
        for label, raw in bodies:
            request = urllib.request.Request(
                server.url + "/query",
                data=raw,
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request, timeout=10) as response:
                    status, payload = response.status, json.loads(response.read())
            except urllib.error.HTTPError as error:
                status, payload = error.code, json.loads(error.read())
            verdict.add(
                f"malformed:{label}",
                400 <= status < 500 and payload.get("ok") is False,
                f"status {status}, code "
                f"{payload.get('error', {}).get('code')!r}",
            )
        request = urllib.request.Request(
            server.url + "/query",
            data=json.dumps({"query": fx.query}).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            payload = json.loads(response.read())
        verdict.add(
            "still-healthy",
            response.status == 200 and _wire_rows(payload) == fx.wire_reference,
            f"valid request after the garbage: status {response.status}, rows "
            + ("identical" if _wire_rows(payload) == fx.wire_reference else "DIFFER"),
        )
    return verdict


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in [
        Scenario(
            "hang",
            "a shard hangs (or an operator makes no progress) under a "
            "request deadline — partial result under 2x the deadline",
            "shard fault injector / wall-clock guard",
            ("solo", "sharded"),
            _run_hang,
        ),
        Scenario(
            "slow",
            "one shard is slow; with hedging enabled a duplicate attempt "
            "races it and the first answer wins",
            "shard fault injector (SlowShard) + hedged dispatch",
            ("sharded",),
            _run_slow,
        ),
        Scenario(
            "transient-io",
            "the first K attempts on one shard fail with OSError; retries "
            "recover the full answer",
            "shard fault injector (TransientIOFault)",
            ("sharded",),
            _run_transient,
        ),
        Scenario(
            "corrupt",
            "a saved index is damaged on disk; answers degrade (identical "
            "rows) or fail flagged, never silently wrong",
            "on-disk index damage",
            ("solo", "sharded"),
            _run_corrupt,
        ),
        Scenario(
            "stale",
            "a source file changed after indexing; staleness is typed "
            "(strict) or flagged (tolerant)",
            "source rewrite after save",
            ("solo", "sharded"),
            _run_stale,
        ),
        Scenario(
            "worker-stall",
            "the worker pool stalls a request past its end-to-end "
            "deadline; the deadline is consumed, not re-armed",
            "server pool fault injector (WorkerStall)",
            ("solo", "sharded"),
            _run_worker_stall,
        ),
        Scenario(
            "overload",
            "admission capacity exhausted; 429 with Retry-After from the "
            "queue-drain rate, in-flight work unharmed",
            "admission capacity",
            ("solo", "sharded"),
            _run_overload,
        ),
        Scenario(
            "drain",
            "graceful shutdown races an in-flight request: it completes, "
            "new work gets structured 503s",
            "graceful-drain state machine",
            ("solo", "sharded"),
            _run_drain,
        ),
        Scenario(
            "malformed-body",
            "garbage request bodies at the HTTP boundary come back as "
            "structured 4xx envelopes",
            "HTTP request parsing",
            ("solo", "sharded"),
            _run_malformed_body,
        ),
        Scenario(
            "kill-mid-append",
            "the process dies mid-write of a journal frame: acked appends "
            "recover, the torn unacked frame truncates away, the retry "
            "lands with the next sequence number",
            "partial WAL frame bytes on disk",
            ("sharded",),
            _run_kill_mid_append,
        ),
        Scenario(
            "torn-journal-tail",
            "byte-level journal damage: a torn tail truncates and replays "
            "clean; in-place bit rot in an acked frame raises a typed "
            "JournalCorruptError instead of silent loss",
            "WAL truncation / bit flip",
            ("sharded",),
            _run_torn_journal_tail,
        ),
        Scenario(
            "crash-mid-compaction",
            "a crash between any two compaction commit points (shard swap, "
            "root-manifest rewrite, journal trim): reopening replays the "
            "journal — no lost and no double-applied records",
            "LiveEngine crash hook",
            ("sharded",),
            _run_crash_mid_compaction,
        ),
        Scenario(
            "crash-mid-split",
            "a crash between the split lifecycle's commit points (new "
            "shards saved, root-manifest rewrite, old-dir GC): the logical "
            "corpus survives byte-for-byte either way",
            "LiveEngine crash hook",
            ("sharded",),
            _run_crash_mid_split,
        ),
        Scenario(
            "corrupt-one-replica",
            "one replica of every shard is damaged (replicas=2): queries "
            "stay byte-identical via replica-failover — no partial result "
            "— and one scrub --repair pass heals to zero findings",
            "on-disk replica damage + scrub repair",
            ("sharded",),
            _run_corrupt_one_replica,
        ),
        Scenario(
            "corrupt-all-but-one",
            "every replica but one is damaged per shard (replicas=3): the "
            "single survivor still answers byte-identically and re-seeds "
            "its siblings through anti-entropy repair",
            "on-disk replica damage + scrub repair",
            ("sharded",),
            _run_corrupt_all_but_one,
        ),
        Scenario(
            "kill-mid-repair",
            "the scrubber dies between quarantine, peer-copy, and swap: "
            "the last healthy replica is never lost, and a re-run "
            "finishes the interrupted repair",
            "scrub crash hook",
            ("sharded",),
            _run_kill_mid_repair,
        ),
        Scenario(
            "kill-mid-quorum-append",
            "the process dies after one replica journal fsynced a frame "
            "but before its sibling: recovery promotes the acked frame to "
            "every journal and never reissues its sequence number",
            "LiveEngine append crash hook",
            ("sharded",),
            _run_kill_mid_quorum_append,
        ),
    ]
}
