"""Deterministic chaos testing for the query engine and its server.

Every degradation promise in ``docs/robustness.md`` is only worth what
its test coverage proves.  This package turns the promises into a
**seed-driven chaos matrix**: named scenarios inject faults through the
same hooks production code exposes (shard fault injectors, worker-pool
stalls, on-disk index damage, malformed HTTP bodies, admission capacity,
graceful-drain races), and an **invariant oracle** replays every faulted
run against a healthy twin:

- rows are byte-identical to the healthy answer, or the loss is flagged
  (``partial-result`` + a cause code), or the failure is a typed error —
  never silently wrong, never an untyped crash;
- every run finishes inside its wall-clock bound — a hung dependency
  never becomes a hung request.

Entry points: :func:`~repro.chaos.harness.run_matrix` (library),
``scripts/chaos_matrix.py`` (CI), ``repro chaos`` (CLI).  Determinism:
each run's RNG is seeded from ``(scenario, backend, seed)``, so
``--seed N`` replays a failure exactly.
"""

from repro.chaos.harness import (
    BACKENDS,
    ChaosRun,
    Fixtures,
    parse_seeds,
    render_report,
    run_matrix,
    run_one,
)
from repro.chaos.oracle import Check, Verdict
from repro.chaos.scenarios import SCENARIOS, Scenario

__all__ = [
    "BACKENDS",
    "SCENARIOS",
    "Check",
    "ChaosRun",
    "Fixtures",
    "Scenario",
    "Verdict",
    "parse_seeds",
    "render_report",
    "run_matrix",
    "run_one",
]
