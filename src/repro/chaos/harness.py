"""The chaos harness: build fixtures, run scenarios, report verdicts.

One :class:`Fixtures` holds the corpus, the query, and the **healthy
twin** reference answer computed once from an unfaulted engine; every
scenario run compares against it.  :func:`run_matrix` is the entry point
shared by ``scripts/chaos_matrix.py``, the ``repro chaos`` CLI
subcommand, and the test suite: it expands ``scenarios x backends x
seeds`` into deterministic :class:`ChaosRun` records.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Iterable, Sequence

from repro.chaos.oracle import Verdict
from repro.chaos.scenarios import N_SHARDS, SCENARIOS, Scenario
from repro.core.engine import FileQueryEngine
from repro.shard import ShardedEngine

DEFAULT_QUERY = 'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'

BACKENDS = ("solo", "sharded")


@dataclass
class Fixtures:
    """The shared healthy-twin context every scenario runs against."""

    schema: Any
    text: str
    query: str
    reference: set[tuple]
    wire_reference: set[tuple]

    @classmethod
    def build(cls, entries: int = 40, corpus_seed: int = 11) -> "Fixtures":
        from repro.workloads.bibtex import bibtex_schema, generate_bibtex

        schema = bibtex_schema()
        text = generate_bibtex(entries=entries, seed=corpus_seed)
        engine = FileQueryEngine(schema, text)
        result = engine.query(DEFAULT_QUERY)
        if not result.rows:
            raise RuntimeError("chaos fixture query matched nothing")
        # The wire-level twin comes from an actual (healthy) server pass,
        # so scenario envelopes compare like-for-like.
        from repro.server import QueryServerApp

        app = QueryServerApp(engine)
        status, payload = app.handle("POST", "/query", {"query": DEFAULT_QUERY})
        app.close()
        if status != 200:
            raise RuntimeError(f"healthy wire twin failed: {payload}")
        return cls(
            schema=schema,
            text=text,
            query=DEFAULT_QUERY,
            reference=result.canonical_rows(),
            wire_reference={tuple(row) for row in payload["rows"]},
        )

    def solo_engine(self, **options: Any) -> FileQueryEngine:
        return FileQueryEngine(self.schema, self.text, **options)

    def sharded_engine(self, **options: Any) -> ShardedEngine:
        return ShardedEngine.split(self.schema, self.text, N_SHARDS, **options)

    def backend(self, kind: str, **options: Any):
        if kind == "solo":
            return self.solo_engine(**options)
        if kind == "sharded":
            return self.sharded_engine(**options)
        raise ValueError(f"unknown backend {kind!r} (one of {BACKENDS})")


@dataclass
class ChaosRun:
    """One (scenario, backend, seed) execution and its oracle verdict."""

    scenario: str
    backend: str
    seed: int
    verdict: Verdict
    elapsed_s: float
    error: str | None = None

    @property
    def passed(self) -> bool:
        return self.error is None and self.verdict.passed

    def describe(self) -> str:
        head = f"{self.scenario} [{self.backend}] seed={self.seed}"
        if self.error is not None:
            return f"FAIL {head}: harness crashed: {self.error}"
        state = "pass" if self.passed else "FAIL"
        lines = [f"{state} {head} ({self.elapsed_s:.2f}s)"]
        for check in self.verdict.checks:
            if not check.ok or not self.passed:
                lines.append(f"    {check}")
        return "\n".join(lines)


def parse_seeds(spec: str) -> list[int]:
    """``"3"`` → ``[3]``; ``"0..7"`` → ``[0, 1, ..., 7]``; comma-separated
    mixes allowed (``"0..3,7"``)."""
    seeds: list[int] = []
    for piece in spec.split(","):
        piece = piece.strip()
        if ".." in piece:
            low, high = piece.split("..", 1)
            start, end = int(low), int(high)
            if end < start:
                raise ValueError(f"empty seed range {piece!r}")
            seeds.extend(range(start, end + 1))
        elif piece:
            seeds.append(int(piece))
    if not seeds:
        raise ValueError(f"no seeds in {spec!r}")
    return seeds


def run_one(
    scenario: Scenario, fixtures: Fixtures, backend: str, seed: int
) -> ChaosRun:
    """Run one scenario deterministically: the RNG is seeded from the
    (scenario, backend, seed) triple, so a CI failure replays exactly."""
    rng = random.Random(f"{scenario.name}:{backend}:{seed}")
    started = perf_counter()
    with tempfile.TemporaryDirectory(prefix=f"chaos-{scenario.name}-") as tmp:
        try:
            verdict = scenario.run(fixtures, rng, backend, Path(tmp))
        except Exception as error:  # noqa: BLE001 — a crash is a failed run
            return ChaosRun(
                scenario=scenario.name,
                backend=backend,
                seed=seed,
                verdict=Verdict(),
                elapsed_s=perf_counter() - started,
                error=f"{type(error).__name__}: {error}",
            )
    return ChaosRun(
        scenario=scenario.name,
        backend=backend,
        seed=seed,
        verdict=verdict,
        elapsed_s=perf_counter() - started,
    )


def run_matrix(
    seeds: Iterable[int],
    scenarios: Sequence[str] | None = None,
    backends: Sequence[str] = BACKENDS,
    fixtures: Fixtures | None = None,
) -> list[ChaosRun]:
    """Every selected scenario x applicable backend x seed."""
    names = list(scenarios) if scenarios is not None else list(SCENARIOS)
    unknown = sorted(set(names) - set(SCENARIOS))
    if unknown:
        raise ValueError(f"unknown scenario(s) {unknown} (one of {sorted(SCENARIOS)})")
    fixtures = fixtures if fixtures is not None else Fixtures.build()
    runs: list[ChaosRun] = []
    for seed in seeds:
        for name in names:
            scenario = SCENARIOS[name]
            for backend in backends:
                if backend not in scenario.backends:
                    continue
                runs.append(run_one(scenario, fixtures, backend, seed))
    return runs


def render_report(runs: Sequence[ChaosRun]) -> str:
    """A readable matrix summary, failures expanded."""
    lines = []
    failed = [run for run in runs if not run.passed]
    for run in runs:
        lines.append(run.describe())
    lines.append(
        f"chaos matrix: {len(runs) - len(failed)}/{len(runs)} run(s) passed"
        + ("" if not failed else f", {len(failed)} FAILED")
    )
    return "\n".join(lines)
