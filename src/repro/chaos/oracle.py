"""The chaos invariant oracle.

Every faulted run is judged against a **healthy twin** — the same query
over the same corpus with no fault injected.  The contract under fault is
narrow and absolute:

- the faulted answer's rows are **byte-identical** to the healthy twin's
  (degradation machinery preserved the answer), OR
- the loss is **flagged**: rows are a subset of the healthy rows and the
  result carries the documented warning codes (``partial-result`` plus a
  cause like ``shard-failed`` / ``shard-timeout``), OR
- the request failed with a **typed** error from the scenario's allowed
  set (never a bare ``Exception``, never a hang);

and the whole run finished inside the scenario's wall-clock bound.

Checks are plain data (:class:`Check`) so the harness can render a
readable matrix and CI can fail on the first violated invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass
class Check:
    """One verified invariant: what was asserted and whether it held."""

    name: str
    ok: bool
    message: str

    def __str__(self) -> str:
        return f"{'ok' if self.ok else 'FAIL'}: {self.name} — {self.message}"


@dataclass
class Verdict:
    """Every check the oracle ran for one faulted execution."""

    checks: list[Check] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> list[Check]:
        return [check for check in self.checks if not check.ok]

    def add(self, name: str, ok: bool, message: str) -> Check:
        check = Check(name, bool(ok), message)
        self.checks.append(check)
        return check

    # -- invariants ------------------------------------------------------------

    def rows_identical_or_flagged(
        self,
        faulted_rows: set[tuple],
        healthy_rows: set[tuple],
        codes: Iterable[str],
        flag: str = "partial-result",
    ) -> None:
        """Rows byte-identical to the healthy twin, or a flagged subset."""
        codes = set(codes)
        if faulted_rows == healthy_rows:
            self.add(
                "rows",
                True,
                f"byte-identical to the healthy twin ({len(healthy_rows)} row(s))",
            )
            return
        if not faulted_rows <= healthy_rows:
            invented = len(faulted_rows - healthy_rows)
            self.add(
                "rows",
                False,
                f"faulted run invented {invented} row(s) absent from the "
                "healthy twin",
            )
            return
        self.add(
            "rows",
            flag in codes,
            f"lost {len(healthy_rows - faulted_rows)} row(s) "
            + (f"and flagged {flag!r}" if flag in codes else f"WITHOUT {flag!r}"),
        )

    def codes_within(self, codes: Iterable[str], allowed: Iterable[str]) -> None:
        """Every warning code is one the scenario documents."""
        unexpected = sorted(set(codes) - set(allowed))
        self.add(
            "warning-codes",
            not unexpected,
            "all codes documented" if not unexpected else f"unexpected {unexpected}",
        )

    def codes_include(self, codes: Iterable[str], required: Iterable[str]) -> None:
        """The documented cause codes actually showed up."""
        missing = sorted(set(required) - set(codes))
        self.add(
            "cause-flagged",
            not missing,
            f"carries {sorted(set(required))}" if not missing else f"missing {missing}",
        )

    def bounded(self, elapsed_s: float, bound_s: float, label: str = "run") -> None:
        """The faulted run finished inside its wall-clock bound — a hang
        that outlives the bound is a failed invariant, not a slow test."""
        self.add(
            "bounded",
            elapsed_s <= bound_s,
            f"{label} took {elapsed_s:.3f}s (bound {bound_s:.3f}s)",
        )

    def typed_error(self, error: BaseException | None, allowed: tuple[type, ...]) -> None:
        """The failure (if any) is a typed, documented error."""
        if error is None:
            self.add("typed-error", False, "expected a typed error, none was raised")
            return
        self.add(
            "typed-error",
            isinstance(error, allowed),
            f"{type(error).__name__} "
            + (
                "is documented"
                if isinstance(error, allowed)
                else f"not in {tuple(t.__name__ for t in allowed)}"
            ),
        )

    def envelope_error(
        self,
        status: int,
        payload: dict[str, Any],
        expected_status: int | Iterable[int],
        expected_codes: Iterable[str],
    ) -> None:
        """A server envelope failed with the documented status + code."""
        statuses = (
            {expected_status}
            if isinstance(expected_status, int)
            else set(expected_status)
        )
        code = payload.get("error", {}).get("code")
        ok = status in statuses and code in set(expected_codes)
        self.add(
            "envelope",
            ok,
            f"status {status} code {code!r}"
            + (
                ""
                if ok
                else f" (wanted {sorted(statuses)} / {sorted(set(expected_codes))})"
            ),
        )
