"""repro — a reproduction of "Optimizing Queries on Files"
(Consens & Milo, SIGMOD 1994).

The library lets you view semi-structured files as a database and evaluate
XSQL-style queries on them through text indexes, with the paper's
RIG-based optimization of region expressions.

Quickstart
----------
>>> from repro import FileQueryEngine
>>> from repro.workloads.bibtex import bibtex_schema, generate_bibtex
>>> engine = FileQueryEngine(bibtex_schema(), generate_bibtex(entries=100))
>>> result = engine.query(
...     'SELECT r FROM Reference r '
...     'WHERE r.Authors.Name.Last_Name = "Chang"')
>>> print(engine.explain(result.plan.query))  # doctest: +SKIP

Package layout
--------------
- :mod:`repro.algebra` — the PAT region algebra (Section 3.1);
- :mod:`repro.rig` — region inclusion graphs (Section 3.2 / 4.2 / 6.1);
- :mod:`repro.core` — the optimizer (Theorem 3.6) and query engine;
- :mod:`repro.schema` — structuring schemas (Section 4);
- :mod:`repro.index` — the text indexing engine (PAT stand-in);
- :mod:`repro.db` — the object-database baseline;
- :mod:`repro.text` — documents, corpora, tokenization;
- :mod:`repro.workloads` — BibTeX / logs / SGML grammars and generators.
"""

from repro.algebra import (
    Region,
    RegionSet,
    Instance,
    parse_expression,
)
from repro.core import (
    FileQueryEngine,
    QueryResult,
    IndexAdvisor,
    optimize,
    is_trivially_empty,
    explain_plan,
)
from repro.db import parse_query
from repro.index import IndexConfig, ScopedRegionSpec
from repro.rig import RegionInclusionGraph, derive_full_rig, derive_partial_rig
from repro.schema import Grammar, StructuringSchema
from repro.text import Corpus, Document

__version__ = "1.0.0"

__all__ = [
    "Region",
    "RegionSet",
    "Instance",
    "parse_expression",
    "FileQueryEngine",
    "QueryResult",
    "IndexAdvisor",
    "optimize",
    "is_trivially_empty",
    "explain_plan",
    "parse_query",
    "IndexConfig",
    "ScopedRegionSpec",
    "RegionInclusionGraph",
    "derive_full_rig",
    "derive_partial_rig",
    "Grammar",
    "StructuringSchema",
    "Corpus",
    "Document",
    "__version__",
]
