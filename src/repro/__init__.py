"""repro — a reproduction of "Optimizing Queries on Files"
(Consens & Milo, SIGMOD 1994).

The library lets you view semi-structured files as a database and evaluate
XSQL-style queries on them through text indexes, with the paper's
RIG-based optimization of region expressions.

Quickstart
----------
>>> from repro import FileQueryEngine
>>> from repro.workloads.bibtex import bibtex_schema, generate_bibtex
>>> engine = FileQueryEngine(bibtex_schema(), generate_bibtex(entries=100))
>>> result = engine.query(
...     'SELECT r FROM Reference r '
...     'WHERE r.Authors.Name.Last_Name = "Chang"')
>>> print(engine.explain(result.plan.query))  # doctest: +SKIP

Package layout
--------------
- :mod:`repro.algebra` — the PAT region algebra (Section 3.1);
- :mod:`repro.rig` — region inclusion graphs (Section 3.2 / 4.2 / 6.1);
- :mod:`repro.core` — the optimizer (Theorem 3.6) and query engine;
- :mod:`repro.schema` — structuring schemas (Section 4);
- :mod:`repro.index` — the text indexing engine (PAT stand-in);
- :mod:`repro.db` — the object-database baseline;
- :mod:`repro.text` — documents, corpora, tokenization;
- :mod:`repro.workloads` — BibTeX / logs / SGML grammars and generators;
- :mod:`repro.resilience` — degradation policies, budgets, retry/backoff,
  circuit breakers, fault injectors;
- :mod:`repro.feedback` — feedback-calibrated cost model and adaptive
  re-planning (persisted estimate-vs-actual history);
- :mod:`repro.shard` — sharded corpora: scatter-gather queries over one
  fault-isolated engine + index per corpus file;
- :mod:`repro.api` — the unified engine API: one request/response
  dataclass family and the :class:`~repro.api.QueryBackend` protocol both
  engines satisfy;
- :mod:`repro.server` — a concurrent HTTP serving layer (``repro serve``)
  with admission control, budget quotas, and cursor pagination.
"""

from repro.api import (
    AnalyzeResponse,
    ExplainResponse,
    QueryBackend,
    QueryRequest,
    QueryResponse,
    StatsResponse,
)
from repro.algebra import (
    Region,
    RegionSet,
    Instance,
    parse_expression,
)
from repro.core import (
    ExecutionStats,
    FileQueryEngine,
    Plan,
    QueryResult,
    IndexAdvisor,
    optimize,
    is_trivially_empty,
    explain_plan,
)
from repro.db import parse_query
from repro.errors import (
    AlgebraError,
    BudgetExceededError,
    CandidateParseError,
    DatabaseError,
    GrammarError,
    IndexConfigError,
    IndexCorruptError,
    IndexNotFoundError,
    IndexStaleError,
    ParseError,
    PlanningError,
    QueryError,
    QuerySyntaxError,
    RegionError,
    RegionIndexError,
    ReproError,
    RigError,
    TranslationError,
    UnknownRegionNameError,
)
from repro.index import IndexConfig, ScopedRegionSpec
from repro.obs import (
    Analysis,
    HookRegistry,
    QueryStats,
    Span,
    SpanCollector,
    Trace,
    Tracer,
)
from repro.errors import ShardError, ShardFailedError
from repro.errors import CalibrationCorruptError, FeedbackError
from repro.errors import PaginationError, ServerError, ServerOverloadedError
from repro.feedback import (
    CalibratedCostModel,
    FeedbackConfig,
    FeedbackHistory,
    ReplanTriggered,
)
from repro.resilience import (
    BreakerConfig,
    CircuitBreaker,
    DegradationPolicy,
    QueryWarning,
    ResourceBudget,
    RetryPolicy,
    call_with_retry,
)
from repro.rig import RegionInclusionGraph, derive_full_rig, derive_partial_rig
from repro.schema import Grammar, StructuringSchema
from repro.server import QueryServer, ServerConfig
from repro.shard import (
    ShardedEngine,
    ShardedQueryResult,
    ShardedStats,
    split_corpus,
)
from repro.text import Corpus, Document

__version__ = "1.6.0"

__all__ = [
    "Region",
    "RegionSet",
    "Instance",
    "parse_expression",
    "FileQueryEngine",
    "QueryResult",
    "Plan",
    "ExecutionStats",
    "IndexAdvisor",
    "optimize",
    "is_trivially_empty",
    "explain_plan",
    "parse_query",
    "IndexConfig",
    "ScopedRegionSpec",
    "RegionInclusionGraph",
    "derive_full_rig",
    "derive_partial_rig",
    "Grammar",
    "StructuringSchema",
    "Corpus",
    "Document",
    # observability
    "Analysis",
    "HookRegistry",
    "QueryStats",
    "Span",
    "SpanCollector",
    "Trace",
    "Tracer",
    # resilience
    "BreakerConfig",
    "CircuitBreaker",
    "DegradationPolicy",
    "QueryWarning",
    "ResourceBudget",
    "RetryPolicy",
    "call_with_retry",
    # feedback calibration
    "CalibratedCostModel",
    "FeedbackConfig",
    "FeedbackHistory",
    "ReplanTriggered",
    # sharded execution
    "ShardedEngine",
    "ShardedQueryResult",
    "ShardedStats",
    "split_corpus",
    # unified engine API
    "AnalyzeResponse",
    "ExplainResponse",
    "QueryBackend",
    "QueryRequest",
    "QueryResponse",
    "StatsResponse",
    # serving layer
    "QueryServer",
    "ServerConfig",
    # error hierarchy
    "ReproError",
    "RegionError",
    "AlgebraError",
    "UnknownRegionNameError",
    "RigError",
    "GrammarError",
    "ParseError",
    "CandidateParseError",
    "QueryError",
    "QuerySyntaxError",
    "TranslationError",
    "PlanningError",
    "DatabaseError",
    "RegionIndexError",
    "IndexConfigError",
    "IndexNotFoundError",
    "IndexCorruptError",
    "IndexStaleError",
    "BudgetExceededError",
    "FeedbackError",
    "CalibrationCorruptError",
    "ShardError",
    "ShardFailedError",
    "PaginationError",
    "ServerError",
    "ServerOverloadedError",
    "__version__",
]


def __getattr__(name: str):
    if name == "IndexError_":
        import warnings

        warnings.warn(
            "repro.IndexError_ is deprecated; use repro.RegionIndexError instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return RegionIndexError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
