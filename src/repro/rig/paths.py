"""Path analyses over region inclusion graphs.

These are the graph-side preconditions of the optimizer's rewrite rules
(Proposition 3.5) and of the triviality test (Proposition 3.3).  "Path"
follows the paper's usage but is implemented with *walk* semantics (nodes and
edges may repeat), which is what region nesting actually realises when the
RIG has cycles (self-nested regions); on acyclic RIGs walks and paths select
the same conditions.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.rig.graph import RegionInclusionGraph


def reach_plus(graph: RegionInclusionGraph, source: str) -> frozenset[str]:
    """Nodes reachable from ``source`` by a walk of at least one edge."""
    seen: set[str] = set()
    frontier = deque(graph.successors(source))
    while frontier:
        node = frontier.popleft()
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(graph.successors(node))
    return frozenset(seen)


def co_reach_plus(graph: RegionInclusionGraph, target: str) -> frozenset[str]:
    """Nodes from which ``target`` is reachable by a walk of at least one edge."""
    seen: set[str] = set()
    frontier = deque(graph.predecessors(target))
    while frontier:
        node = frontier.popleft()
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(graph.predecessors(node))
    return frozenset(seen)


def has_intermediate(graph: RegionInclusionGraph, source: str, target: str) -> bool:
    """Is there a node ``t`` with ``source →⁺ t →⁺ target``?

    When false (and the edge exists), no indexed region can ever sit between
    a ``source`` region and a ``target`` region, so ``⊃`` and ``⊃d``
    coincide — the paper's "the edge (Ri, Rj) is the only path from Ri to
    Rj", generalised to cyclic graphs.  Note ``t`` may be ``source`` or
    ``target`` themselves when they lie on cycles.
    """
    return bool(reach_plus(graph, source) & co_reach_plus(graph, target))


def every_path_starts_with_edge(graph: RegionInclusionGraph, source: str, target: str) -> bool:
    """Does every walk from ``source`` to ``target`` start with the edge
    ``(source, target)``?  (Second disjunct of Proposition 3.5(a).)"""
    if not graph.has_edge(source, target):
        return False
    for neighbour in graph.successors(source):
        if neighbour == target:
            continue
        if neighbour == source:
            # A self-loop lets a walk begin source -> source -> ... -> target.
            return False
        if target == neighbour or target in reach_plus(graph, neighbour):
            return False
    return True


def every_path_ends_with_edge(graph: RegionInclusionGraph, source: str, target: str) -> bool:
    """Does every walk from ``source`` to ``target`` end with the edge
    ``(source, target)``?  Mirror of :func:`every_path_starts_with_edge`,
    used for the ``⊂d -> ⊂`` rewrite on projection chains."""
    if not graph.has_edge(source, target):
        return False
    reachable = reach_plus(graph, source)
    for predecessor in graph.predecessors(target):
        if predecessor == source:
            continue
        if predecessor == target:
            # A self-loop lets a walk end target -> target.
            return False
        if predecessor in reachable:
            return False
    return True


def every_path_through(graph: RegionInclusionGraph, source: str, target: str, via: str) -> bool:
    """Does every walk ``source →⁺ target`` pass through node ``via``?

    Precondition of the shortening rule (Proposition 3.5(b)): used to decide
    whether ``Ri ⊃ Rj ⊃ Rk`` can become ``Ri ⊃ Rk``.  Endpoints count: if
    ``via`` equals ``source`` or ``target``, every walk trivially passes
    through it.  Requires at least one walk to exist (otherwise the
    expression is trivially empty — Proposition 3.3 — and shortening is moot).
    """
    if via == source or via == target:
        return target in reach_plus(graph, source)
    if target not in reach_plus(graph, source):
        return False
    # Remove `via`; if target is still reachable, some walk avoids it.
    seen: set[str] = set()
    frontier = deque(node for node in graph.successors(source) if node != via)
    while frontier:
        node = frontier.popleft()
        if node in seen:
            continue
        seen.add(node)
        if node == target:
            return False
        frontier.extend(n for n in graph.successors(node) if n != via)
    return True


def _coincidence_reach(graph: RegionInclusionGraph, source: str) -> frozenset[str]:
    """Nodes reachable from ``source`` by ≥1 *coincident* edge."""
    succ: dict[str, set[str]] = {}
    for parent, child in graph.coincident_edges:
        succ.setdefault(parent, set()).add(child)
    seen: set[str] = set()
    frontier = deque(succ.get(source, ()))
    while frontier:
        node = frontier.popleft()
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(succ.get(node, ()))
    return frozenset(seen)


def coincident_related(graph: RegionInclusionGraph, first: str, second: str) -> bool:
    """Can regions named ``first`` and ``second`` legally share an extent?

    True when a chain of coincident edges connects the two names in either
    direction.  Always false on RIGs with an empty coincidence relation (the
    paper's setting).
    """
    if first == second:
        return True
    return second in _coincidence_reach(graph, first) or first in _coincidence_reach(
        graph, second
    )


def simple_paths(
    graph: RegionInclusionGraph,
    source: str,
    target: str,
    max_length: int | None = None,
) -> Iterator[tuple[str, ...]]:
    """Enumerate simple paths (no repeated node) from ``source`` to
    ``target``.  Used by extended path expressions with variables, where each
    variable assignment corresponds to one simple path (Section 5.3).

    ``max_length`` bounds the number of *edges*.
    """
    limit = max_length if max_length is not None else len(graph.nodes)

    def extend(path: tuple[str, ...], visited: frozenset[str]) -> Iterator[tuple[str, ...]]:
        current = path[-1]
        if current == target and len(path) > 1:
            yield path
            return
        if len(path) - 1 >= limit:
            return
        for neighbour in sorted(graph.successors(current)):
            if neighbour in visited and neighbour != target:
                continue
            yield from extend(path + (neighbour,), visited | {neighbour})

    if source == target:
        # A "path" of length zero; callers decide whether that is meaningful.
        yield (source,)
        return
    if source not in graph.nodes:
        return
    yield from extend((source,), frozenset({source}))


def walks_of_length(
    graph: RegionInclusionGraph, source: str, target: str, length: int
) -> Iterator[tuple[str, ...]]:
    """Enumerate walks with exactly ``length`` edges from ``source`` to
    ``target`` (for fixed-arity path variables ``Ai.X1...Xn.Aj``)."""
    if length == 0:
        if source == target:
            yield (source,)
        return

    def extend(path: tuple[str, ...]) -> Iterator[tuple[str, ...]]:
        if len(path) - 1 == length:
            if path[-1] == target:
                yield path
            return
        for neighbour in sorted(graph.successors(path[-1])):
            yield from extend(path + (neighbour,))

    yield from extend((source,))
