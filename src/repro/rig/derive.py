"""Deriving RIGs from structuring-schema grammars.

Section 4.2 (full indexing): "the region inclusion graph of Z can be
automatically derived from the grammar G.  The nodes are the non-terminals
of the grammar, and the graph has an edge (Ai, Aj) iff G has a rule where Ai
appears as the left side, and Aj as the right side."

Section 6.1 (partial indexing): "The nodes are the indexed non-terminals.
The graph has an edge (Ai, Aj) iff in the RIG of the full grammar there is a
path from Ai to Aj where all the non-terminals on the path other than Ai, Aj
are not indexed."

Beyond the paper, we also derive the *coincidence* relation (see
:mod:`repro.rig.graph`): an edge ``(A, B)`` is coincidence-capable when a
``B`` child can span its whole ``A`` parent — a star rule's single
repetition, or a sequence rule whose other items can derive zero width.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.errors import RigError
from repro.rig.graph import RegionInclusionGraph
from repro.schema.grammar import (
    Grammar,
    Literal,
    NonTerminal,
    StarRule,
    TUntil,
)


def _zero_width_nonterminals(grammar: Grammar) -> frozenset[str]:
    """Non-terminals that can derive a zero-width region (fixpoint)."""

    def item_can_be_zero(item, nullable: set[str]) -> bool:
        if isinstance(item, NonTerminal):
            return item.name in nullable
        if isinstance(item, Literal):
            return False
        if isinstance(item, TUntil):
            return item.allow_empty
        return False  # TWord / TQuoted / TNumber always consume

    nullable: set[str] = set()
    changed = True
    while changed:
        changed = False
        for rule in grammar.rules:
            if rule.lhs in nullable:
                continue
            if isinstance(rule, StarRule):
                if rule.min_count == 0:
                    nullable.add(rule.lhs)
                    changed = True
                elif rule.item.name in nullable and rule.separator is None:
                    nullable.add(rule.lhs)
                    changed = True
            elif all(item_can_be_zero(item, nullable) for item in rule.items):
                nullable.add(rule.lhs)
                changed = True
    return frozenset(nullable)


def _coincident_edges(grammar: Grammar) -> set[tuple[str, str]]:
    """Edges whose child region can coincide with the parent's extent."""
    nullable = _zero_width_nonterminals(grammar)
    coincident: set[tuple[str, str]] = set()
    for rule in grammar.rules:
        if isinstance(rule, StarRule):
            # A single repetition spans the whole star region.
            coincident.add((rule.lhs, rule.item.name))
            continue
        for index, item in enumerate(rule.items):
            if not isinstance(item, NonTerminal):
                continue
            others = rule.items[:index] + rule.items[index + 1 :]
            if all(
                isinstance(other, NonTerminal)
                and other.name in nullable
                or isinstance(other, TUntil)
                and other.allow_empty
                for other in others
            ):
                coincident.add((rule.lhs, item.name))
    return coincident


def derive_full_rig(grammar: Grammar, include_root: bool = True) -> RegionInclusionGraph:
    """The RIG of the fully indexed grammar (Section 4.2).

    ``include_root=False`` drops the grammar's start symbol, matching the
    paper's region index that "contains all the non-terminal names in the
    grammar, except the root".
    """
    graph = RegionInclusionGraph()
    for nonterminal in grammar.nonterminals:
        if not include_root and nonterminal == grammar.start:
            continue
        graph.add_node(nonterminal)
    for source, target in grammar.iter_edges():
        if not include_root and grammar.start in (source, target):
            continue
        graph.add_edge(source, target)
    for source, target in _coincident_edges(grammar):
        if graph.has_edge(source, target):
            graph.mark_coincident(source, target)
    return graph


def derive_partial_rig(
    grammar: Grammar, indexed: Iterable[str]
) -> RegionInclusionGraph:
    """The RIG of a partial region index (Section 6.1).

    Contracts the full RIG: an edge ``(Ai, Aj)`` exists iff some full-RIG
    path from ``Ai`` to ``Aj`` passes only through unindexed non-terminals.
    An edge is coincidence-capable iff some such path consists entirely of
    coincidence-capable steps.
    """
    keep = set(indexed)
    unknown = keep - set(grammar.nonterminals)
    if unknown:
        raise RigError(f"cannot index unknown non-terminals: {sorted(unknown)}")
    full = derive_full_rig(grammar, include_root=True)
    partial = RegionInclusionGraph(nodes=keep)
    for source in sorted(keep):
        for target, all_coincident in _contracted_targets(full, source, keep):
            partial.add_edge(source, target)
            if all_coincident:
                partial.mark_coincident(source, target)
    return partial


def _contracted_targets(
    full: RegionInclusionGraph, source: str, keep: set[str]
) -> list[tuple[str, bool]]:
    """Indexed nodes reachable from ``source`` through unindexed interiors.

    Returns ``(target, coincident_path_exists)`` pairs.  The search tracks,
    per visited unindexed node, whether it was reached by an all-coincident
    path (a node may first be reached non-coincidently and later
    coincidently, so states are (node, coincident-flag) pairs).
    """
    results: dict[str, bool] = {}
    seen: set[tuple[str, bool]] = set()
    queue: deque[tuple[str, bool]] = deque()
    for child in full.successors(source):
        coincident = (source, child) in full.coincident_edges
        queue.append((child, coincident))
    while queue:
        node, coincident = queue.popleft()
        if (node, coincident) in seen:
            continue
        seen.add((node, coincident))
        if node in keep:
            results[node] = results.get(node, False) or coincident
            continue
        for child in full.successors(node):
            step_coincident = coincident and (node, child) in full.coincident_edges
            queue.append((child, step_coincident))
    return sorted(results.items())
