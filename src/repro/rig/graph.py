"""The region inclusion graph (RIG) model.

Definition 3.1 of the paper: an instance ``I`` of a region index satisfies a
RIG ``G = (Z, E)`` iff whenever a region ``r ∈ Ri(I)`` *directly* includes a
region ``s ∈ Rj(I)``, the edge ``(Ri, Rj)`` is in ``E``.

Regions in this library are bare extents, so two region names can hold a
region with the *same* extent (e.g. an ``Authors`` list whose single ``Name``
spans the whole list).  The paper does not discuss this corner; we model it
explicitly with a *coincidence* relation: a subset of the edges marked as
able to produce coincident (equal-extent) parent/child regions.  Satisfaction
then reads:

- every strict direct inclusion (distinct extents, no indexed region of a
  third extent between) requires its edge, for every pair of names held by
  the two extents;
- every equal-extent co-occurrence of two names requires the names to be
  connected by a chain of coincidence edges (in either direction).

For RIGs built by hand (like the paper's BibTeX example) the coincidence
relation defaults to empty, and all definitions collapse to the paper's.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping

from repro.algebra.region import Instance, Region
from repro.errors import RigError


class RegionInclusionGraph:
    """A directed graph over region names, with a coincidence sub-relation."""

    def __init__(
        self,
        nodes: Iterable[str] = (),
        edges: Iterable[tuple[str, str]] = (),
        coincident: Iterable[tuple[str, str]] = (),
    ) -> None:
        self._nodes: set[str] = set(nodes)
        self._succ: dict[str, set[str]] = defaultdict(set)
        self._pred: dict[str, set[str]] = defaultdict(set)
        self._coincident: set[tuple[str, str]] = set()
        for source, target in edges:
            self.add_edge(source, target)
        for source, target in coincident:
            self.mark_coincident(source, target)

    # -- construction --------------------------------------------------------

    @classmethod
    def from_adjacency(
        cls,
        adjacency: Mapping[str, Iterable[str]],
        coincident: Iterable[tuple[str, str]] = (),
    ) -> "RegionInclusionGraph":
        """Build from ``{parent: [children, ...]}``."""
        graph = cls()
        for source, targets in adjacency.items():
            graph.add_node(source)
            for target in targets:
                graph.add_edge(source, target)
        for source, target in coincident:
            graph.mark_coincident(source, target)
        return graph

    def add_node(self, node: str) -> None:
        self._nodes.add(node)

    def add_edge(self, source: str, target: str) -> None:
        self._nodes.add(source)
        self._nodes.add(target)
        self._succ[source].add(target)
        self._pred[target].add(source)

    def mark_coincident(self, source: str, target: str) -> None:
        """Mark the edge ``(source, target)`` as able to produce coincident
        parent/child extents.  The edge must exist."""
        if not self.has_edge(source, target):
            raise RigError(
                f"coincidence requires the edge ({source!r}, {target!r}) to be present"
            )
        self._coincident.add((source, target))

    # -- accessors ------------------------------------------------------------

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    @property
    def edges(self) -> frozenset[tuple[str, str]]:
        return frozenset(
            (source, target) for source, targets in self._succ.items() for target in targets
        )

    @property
    def coincident_edges(self) -> frozenset[tuple[str, str]]:
        return frozenset(self._coincident)

    def has_node(self, node: str) -> bool:
        return node in self._nodes

    def has_edge(self, source: str, target: str) -> bool:
        return target in self._succ.get(source, ())

    def successors(self, node: str) -> frozenset[str]:
        return frozenset(self._succ.get(node, ()))

    def predecessors(self, node: str) -> frozenset[str]:
        return frozenset(self._pred.get(node, ()))

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __repr__(self) -> str:
        return (
            f"RegionInclusionGraph(nodes={len(self._nodes)}, "
            f"edges={len(self.edges)}, coincident={len(self._coincident)})"
        )

    def subgraph(self, nodes: Iterable[str]) -> "RegionInclusionGraph":
        """The induced subgraph on ``nodes`` (edges between kept nodes only).

        Note this is *not* the partial-indexing RIG — that one contracts
        paths through dropped nodes (see :func:`repro.rig.derive.derive_partial_rig`).
        """
        keep = set(nodes)
        graph = RegionInclusionGraph(nodes=keep & self._nodes)
        for source, target in self.edges:
            if source in keep and target in keep:
                graph.add_edge(source, target)
        for source, target in self._coincident:
            if source in keep and target in keep:
                graph.mark_coincident(source, target)
        return graph

    # -- Definition 3.1: instance satisfaction --------------------------------

    def violations(self, instance: Instance, limit: int = 10) -> list[str]:
        """Describe up to ``limit`` ways ``instance`` violates this RIG.

        Empty list means the instance satisfies the graph (Definition 3.1,
        extended for coincident extents as described in the module docstring).
        """
        problems: list[str] = []
        extent_names = _names_by_extent(instance)
        all_regions = instance.all_regions()
        extents = sorted(extent_names)

        # Equal-extent co-occurrence: names must be coincidence-connected.
        from repro.rig.paths import coincident_related  # local import: avoid cycle

        for extent in extents:
            names_here = sorted(extent_names[extent])
            for first in names_here:
                for second in names_here:
                    if first >= second:
                        continue
                    if first not in self._nodes or second not in self._nodes:
                        problems.append(
                            f"region name {first!r}/{second!r} not a node of the graph"
                        )
                    elif not coincident_related(self, first, second):
                        problems.append(
                            f"names {first!r} and {second!r} share extent "
                            f"({extent.start},{extent.end}) but are not "
                            "coincidence-connected"
                        )
                    if len(problems) >= limit:
                        return problems

        # Strict direct inclusions: some name at the outer extent must have an
        # edge to some name at the inner extent.  (With coincident extents a
        # single extent carries a chain of names — e.g. a single-editor
        # ``Editors``/``Name`` span — and only the chain's adjacent pair is
        # connected by an edge.)
        for outer in extents:
            for inner in _strict_direct_children(outer, extents, all_regions):
                connected = any(
                    self.has_edge(outer_name, inner_name)
                    for outer_name in extent_names[outer]
                    for inner_name in extent_names[inner]
                )
                if not connected:
                    problems.append(
                        f"regions ({outer.start},{outer.end}) "
                        f"{sorted(extent_names[outer])} directly include "
                        f"({inner.start},{inner.end}) "
                        f"{sorted(extent_names[inner])} but no edge connects them"
                    )
                    if len(problems) >= limit:
                        return problems
        return problems

    def is_satisfied_by(self, instance: Instance) -> bool:
        """Definition 3.1: does ``instance`` satisfy this graph?"""
        return not self.violations(instance, limit=1)


def _names_by_extent(instance: Instance) -> dict[Region, set[str]]:
    extent_names: dict[Region, set[str]] = defaultdict(set)
    for region_name, region_set in instance.items():
        for region in region_set:
            extent_names[region].add(region_name)
    return extent_names


def _strict_direct_children(outer: Region, extents: list[Region], all_regions) -> list[Region]:
    """Extents strictly inside ``outer`` with no third extent strictly between."""
    children: list[Region] = []
    for inner in extents:
        if inner == outer or not outer.includes(inner):
            continue
        if not all_regions.any_strictly_between(outer, inner):
            children.append(inner)
    return children
