"""Region inclusion graphs (Section 3.2, Definitions 3.1 and 3.2).

A RIG is the schema of a region instance: nodes are region names and an edge
``(Ri, Rj)`` states that an ``Ri`` region may *directly* include an ``Rj``
region.  Expression equivalence — and therefore the whole optimization of
Section 3 — is defined with respect to the instances satisfying a RIG.

This package provides the graph model (:mod:`repro.rig.graph`), the path
analyses the optimizer's preconditions need (:mod:`repro.rig.paths`), and the
automatic derivation of RIGs from structuring-schema grammars for both full
and partial indexing (:mod:`repro.rig.derive`, Sections 4.2 and 6.1).
"""

from repro.rig.graph import RegionInclusionGraph
from repro.rig.paths import (
    reach_plus,
    co_reach_plus,
    has_intermediate,
    every_path_starts_with_edge,
    every_path_ends_with_edge,
    every_path_through,
    coincident_related,
    simple_paths,
    walks_of_length,
)
from repro.rig.derive import derive_full_rig, derive_partial_rig

__all__ = [
    "RegionInclusionGraph",
    "reach_plus",
    "co_reach_plus",
    "has_intermediate",
    "every_path_starts_with_edge",
    "every_path_ends_with_edge",
    "every_path_through",
    "coincident_related",
    "simple_paths",
    "walks_of_length",
    "derive_full_rig",
    "derive_partial_rig",
]
