"""Instrumented evaluator for region expressions.

The evaluator plays the role of the PAT engine: it executes a region
expression bottom-up against a region :class:`~repro.algebra.region.Instance`
plus a word lookup (for selections), recording its work in an
:class:`~repro.algebra.counters.OperationCounters`.

The word lookup is a small protocol so the evaluator does not depend on the
index package (the index engine implements it; tests can pass a stub).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Protocol

from repro.algebra import ops
from repro.algebra.ast import (
    DIRECTLY_INCLUDED,
    DIRECTLY_INCLUDING,
    INCLUDED,
    INCLUDING,
    Inclusion,
    Innermost,
    Name,
    Outermost,
    RegionExpr,
    Select,
    SetOp,
)
from repro.algebra.counters import OperationCounters
from repro.algebra.region import Instance, RegionSet
from repro.cache.keys import canonical_key
from repro.cache.region_cache import RegionCache
from repro.errors import AlgebraError, UnknownRegionNameError

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.budget import BudgetMeter


class WordLookup(Protocol):
    """What the evaluator needs from a word index."""

    def occurrences(self, word: str) -> RegionSet:
        """All spans where ``word`` occurs (word-width match points)."""
        ...

    def occurrences_with_prefix(self, prefix: str) -> RegionSet:
        """All spans of words starting with ``prefix`` (lexical search)."""
        ...

    def token_count_between(self, start: int, end: int) -> int:
        """Number of word tokens whose span lies inside ``[start, end)``."""
        ...


class EmptyWordLookup:
    """A word lookup with no words (for purely structural expressions)."""

    def occurrences(self, word: str) -> RegionSet:
        return RegionSet.empty()

    def occurrences_with_prefix(self, prefix: str) -> RegionSet:
        return RegionSet.empty()

    def token_count_between(self, start: int, end: int) -> int:
        return 0


@dataclass
class EvalStats:
    """Result envelope: the region set plus the work done computing it."""

    result: RegionSet
    counters: OperationCounters = field(default_factory=OperationCounters)
    #: Wall-clock seconds of the evaluation (filled by callers that time it,
    #: e.g. :meth:`repro.index.engine.IndexEngine.run`).
    elapsed: float = 0.0


@dataclass
class NodeRecord:
    """Measured actuals for one expression node (EXPLAIN ANALYZE data).

    ``elapsed`` is inclusive — it covers the node's children too, mirroring
    how databases report per-node actual time.  ``cached`` marks results
    that came from the per-evaluator memo or the shared region cache
    rather than being computed.
    """

    elapsed: float
    regions: int
    cached: bool = False


class Evaluator:
    """Evaluate region expressions against one instance.

    Parameters
    ----------
    instance:
        The region index instance (name -> region set).
    word_lookup:
        Provider of word occurrences for selections; defaults to an empty
        lookup, which makes every selection produce the empty set.
    counters:
        Optional shared counters; a fresh tally is created when omitted.
    strict_names:
        When true (default), referencing a region name absent from the
        instance raises :class:`UnknownRegionNameError`; when false it
        evaluates to the empty set (partial-index evaluation uses this).
    region_cache:
        Optional *shared* result cache keyed by canonical structural keys
        (:func:`repro.cache.keys.canonical_key`).  Unlike the per-evaluator
        memo it outlives this evaluator, so sub-chains shared by different
        queries on one engine are evaluated once per engine.  Sound only
        while the instance is immutable, which the index engine guarantees.
    node_log:
        Optional dict filled with a :class:`NodeRecord` per distinct
        expression node — inclusive wall-time and regions produced — for
        EXPLAIN ANALYZE output.  ``None`` (the default) skips all timing.
    budget:
        Optional :class:`~repro.resilience.budget.BudgetMeter`.  Every
        *computed* node result (memo and shared-cache hits are free — they
        touch no new regions) charges its region count, and the meter's
        wall-clock deadline is checked at the same points, so a runaway
        operator loop aborts with
        :class:`~repro.errors.BudgetExceededError` mid-expression instead
        of after the fact.
    node_guard:
        Optional callable ``guard(node, region_count)`` invoked after each
        *computed* node (cache and memo hits are skipped — they were
        guarded when first computed).  The evaluator treats it as opaque:
        whatever it raises propagates.  The feedback subsystem uses this to
        trigger mid-query adaptive re-planning
        (:class:`~repro.feedback.ReplanTriggered`) without the algebra
        layer importing it.
    """

    def __init__(
        self,
        instance: Instance,
        word_lookup: WordLookup | None = None,
        counters: OperationCounters | None = None,
        strict_names: bool = True,
        memoize: bool = True,
        region_cache: RegionCache | None = None,
        node_log: dict[RegionExpr, NodeRecord] | None = None,
        budget: "BudgetMeter | None" = None,
        node_guard: "Callable[[RegionExpr, int], None] | None" = None,
    ) -> None:
        self._instance = instance
        self._words: WordLookup = word_lookup if word_lookup is not None else EmptyWordLookup()
        self.counters = counters if counters is not None else OperationCounters()
        self._strict_names = strict_names
        self._memoize = memoize
        self._memo: dict[RegionExpr, RegionSet] = {}
        self._region_cache = region_cache
        self._node_log = node_log
        self._budget = budget
        self._node_guard = node_guard

    @property
    def instance(self) -> Instance:
        return self._instance

    def evaluate(self, expression: RegionExpr) -> RegionSet:
        """Evaluate ``expression`` and return its region set.

        Repeated subexpressions are evaluated once per evaluator (Section
        5.2: "the goal is to find common subexpressions in the region
        expressions and evaluate them once") — expression nodes are
        immutable, so structural equality keys the memo.
        """
        log = self._node_log
        started = perf_counter() if log is not None else 0.0
        if self._memoize:
            cached = self._memo.get(expression)
            if cached is not None:
                if log is not None and expression not in log:
                    log[expression] = NodeRecord(
                        elapsed=perf_counter() - started,
                        regions=len(cached),
                        cached=True,
                    )
                return cached
        cache_key = None
        if self._region_cache is not None and not isinstance(expression, Name):
            # Strictness changes failure behaviour for unknown names, so it
            # partitions the shared cache.
            cache_key = (self._strict_names, canonical_key(expression))
            shared = self._region_cache.get(cache_key)
            if shared is not None:
                if self._memoize:
                    self._memo[expression] = shared
                if log is not None and expression not in log:
                    log[expression] = NodeRecord(
                        elapsed=perf_counter() - started,
                        regions=len(shared),
                        cached=True,
                    )
                return shared
        result = self._evaluate_node(expression)
        if self._budget is not None:
            self._budget.charge_regions(len(result))
        if self._node_guard is not None:
            self._node_guard(expression, len(result))
        if self._memoize and not isinstance(expression, Name):
            self._memo[expression] = result
        if cache_key is not None:
            self._region_cache.put(cache_key, result)
        if log is not None and expression not in log:
            log[expression] = NodeRecord(
                elapsed=perf_counter() - started, regions=len(result)
            )
        return result

    def _evaluate_node(self, expression: RegionExpr) -> RegionSet:
        if isinstance(expression, Name):
            return self._lookup_name(expression.region_name)
        if isinstance(expression, Select):
            return self._evaluate_select(expression)
        if isinstance(expression, Inclusion):
            return self._evaluate_inclusion(expression)
        if isinstance(expression, SetOp):
            return self._evaluate_set_op(expression)
        if isinstance(expression, Innermost):
            return ops.innermost(self.evaluate(expression.child), self.counters)
        if isinstance(expression, Outermost):
            return ops.outermost(self.evaluate(expression.child), self.counters)
        raise AlgebraError(f"cannot evaluate expression node {expression!r}")

    def run(self, expression: RegionExpr) -> EvalStats:
        """Evaluate with a private tally, returning result, counters, and
        wall time."""
        saved = self.counters
        self.counters = OperationCounters()
        started = perf_counter()
        try:
            result = self.evaluate(expression)
            return EvalStats(
                result=result,
                counters=self.counters,
                elapsed=perf_counter() - started,
            )
        finally:
            self.counters = saved

    # -- node handlers ------------------------------------------------------

    def _lookup_name(self, region_name: str) -> RegionSet:
        if self._strict_names and region_name not in self._instance:
            raise UnknownRegionNameError(region_name, self._instance.names)
        regions = self._instance.get(region_name)
        self.counters.record("name", produced=len(regions))
        return regions

    def _evaluate_select(self, node: Select) -> RegionSet:
        child = self.evaluate(node.child)
        if node.mode in ("prefix", "prefix_contains"):
            occurrences = self._words.occurrences_with_prefix(node.word)
            mode = "exact" if node.mode == "prefix" else "contains"
        else:
            occurrences = self._words.occurrences(node.word)
            mode = node.mode
        return ops.select_word(
            child,
            occurrences,
            mode=mode,
            token_counter=self._words.token_count_between,
            counters=self.counters,
        )

    def _evaluate_inclusion(self, node: Inclusion) -> RegionSet:
        left = self.evaluate(node.left)
        right = self.evaluate(node.right)
        if node.op == INCLUDING:
            return ops.including(left, right, self.counters)
        if node.op == INCLUDED:
            return ops.included(left, right, self.counters)
        if node.op == DIRECTLY_INCLUDING:
            return ops.directly_including(left, right, self._instance, self.counters)
        if node.op == DIRECTLY_INCLUDED:
            return ops.directly_included(left, right, self._instance, self.counters)
        raise AlgebraError(f"unknown inclusion operator {node.op!r}")

    def _evaluate_set_op(self, node: SetOp) -> RegionSet:
        left = self.evaluate(node.left)
        right = self.evaluate(node.right)
        if node.kind == "union":
            return ops.union(left, right, self.counters)
        if node.kind == "intersect":
            return ops.intersect(left, right, self.counters)
        return ops.difference(left, right, self.counters)
