"""The region algebra of Section 3.1 of the paper.

Two kinds of values flow through the algebra: *match points* (word
occurrences, represented as zero-width or word-width regions) and *regions*
(spans of text defined by a begin and end position).  This package provides:

- :class:`Region` / :class:`RegionSet` — the value types;
- :mod:`repro.algebra.ops` — the set-at-a-time operators
  (union, intersection, difference, selection, innermost/outermost,
  inclusion ``⊃``/``⊂`` and direct inclusion ``⊃d``/``⊂d``);
- :mod:`repro.algebra.ast` — the region-expression AST used by the
  optimizer and evaluator;
- :mod:`repro.algebra.evaluator` — an instrumented evaluator that runs
  expressions against a region instance + word lookup;
- :mod:`repro.algebra.direct` — the paper's layered while-loop program for
  ``⊃d`` (used to demonstrate its cost relative to plain ``⊃``).
"""

from repro.algebra.region import Region, RegionSet, Instance
from repro.algebra.ast import (
    RegionExpr,
    Name,
    Select,
    Inclusion,
    SetOp,
    Innermost,
    Outermost,
    name,
    select,
    including,
    directly_including,
    included,
    directly_included,
    union,
    intersect,
    difference,
    innermost,
    outermost,
    chain,
    parse_expression,
)
from repro.algebra.evaluator import Evaluator, EvalStats
from repro.algebra.counters import OperationCounters

__all__ = [
    "Region",
    "RegionSet",
    "Instance",
    "RegionExpr",
    "Name",
    "Select",
    "Inclusion",
    "SetOp",
    "Innermost",
    "Outermost",
    "name",
    "select",
    "including",
    "directly_including",
    "included",
    "directly_included",
    "union",
    "intersect",
    "difference",
    "innermost",
    "outermost",
    "chain",
    "parse_expression",
    "Evaluator",
    "EvalStats",
    "OperationCounters",
]
