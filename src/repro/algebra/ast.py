"""Region-expression AST.

Region expressions follow the grammar of Section 3.1:

    e ->  Ri | e ∪ e | e ∩ e | e − e | σw(e) | ι(e) | ω(e)
        | e ⊃ e | e ⊂ e | e ⊃d e | e ⊂d e | (e)

Inclusion operators are *not* associative; the paper groups them from the
right, and so do the builder helpers here.  The textual syntax accepted by
:func:`parse_expression` uses ASCII operator spellings::

    Reference > Authors > sigma[Chang](Last_Name)
    Last_Name <d Name <d Authors <d Reference
    a & (b | c) - d
    innermost(Section)

``>`` / ``>d`` are including / directly-including, ``<`` / ``<d`` are
included / directly-included, ``&`` ``|`` ``-`` are intersection, union and
difference, ``sigma[w](e)`` is exact-word selection and ``sigmac[w](e)`` is
containment selection.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import AlgebraError

INCLUDING = ">"
DIRECTLY_INCLUDING = ">d"
INCLUDED = "<"
DIRECTLY_INCLUDED = "<d"

INCLUSION_OPS = (INCLUDING, DIRECTLY_INCLUDING, INCLUDED, DIRECTLY_INCLUDED)
#: Operators of the ``⊃`` family (left operand is the container).
FORWARD_OPS = (INCLUDING, DIRECTLY_INCLUDING)
#: Operators of the ``⊂`` family (left operand is the containee).
BACKWARD_OPS = (INCLUDED, DIRECTLY_INCLUDED)

_PRETTY = {
    INCLUDING: "⊃",
    DIRECTLY_INCLUDING: "⊃d",
    INCLUDED: "⊂",
    DIRECTLY_INCLUDED: "⊂d",
    "union": "∪",
    "intersect": "∩",
    "difference": "−",
}


class RegionExpr:
    """Base class for region-expression nodes (all nodes are immutable)."""

    def region_names(self) -> set[str]:
        """All region names mentioned anywhere in the expression."""
        return {node.region_name for node in self.walk() if isinstance(node, Name)}

    def walk(self) -> Iterator["RegionExpr"]:
        """Pre-order traversal of the expression tree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def children(self) -> tuple["RegionExpr", ...]:
        return ()

    # Builder sugar: ``a >> b`` is not used; explicit helpers below instead.

    def __str__(self) -> str:
        return pretty(self)


@dataclass(frozen=True)
class Name(RegionExpr):
    """A region-index name ``Ri``."""

    region_name: str


@dataclass(frozen=True)
class Select(RegionExpr):
    """Selection ``σw(e)`` — filter regions by word content.

    ``mode`` is ``"exact"`` (region *is* the word) or ``"contains"``.
    """

    child: RegionExpr
    word: str
    mode: str = "exact"

    MODES = ("exact", "contains", "prefix", "prefix_contains")

    def __post_init__(self) -> None:
        if self.mode not in self.MODES:
            raise AlgebraError(f"unknown selection mode {self.mode!r}")

    def children(self) -> tuple[RegionExpr, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Inclusion(RegionExpr):
    """An inclusion join ``left op right`` with ``op`` one of
    ``>``, ``>d``, ``<``, ``<d``."""

    op: str
    left: RegionExpr
    right: RegionExpr

    def __post_init__(self) -> None:
        if self.op not in INCLUSION_OPS:
            raise AlgebraError(f"unknown inclusion operator {self.op!r}")

    def children(self) -> tuple[RegionExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class SetOp(RegionExpr):
    """Union / intersection / difference of two region expressions."""

    kind: str
    left: RegionExpr
    right: RegionExpr

    def __post_init__(self) -> None:
        if self.kind not in ("union", "intersect", "difference"):
            raise AlgebraError(f"unknown set operation {self.kind!r}")

    def children(self) -> tuple[RegionExpr, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class Innermost(RegionExpr):
    """``ι(e)``: regions of the result including no other result region."""

    child: RegionExpr

    def children(self) -> tuple[RegionExpr, ...]:
        return (self.child,)


@dataclass(frozen=True)
class Outermost(RegionExpr):
    """``ω(e)``: regions of the result included in no other result region."""

    child: RegionExpr

    def children(self) -> tuple[RegionExpr, ...]:
        return (self.child,)


# -- builder helpers ---------------------------------------------------------


def name(region_name: str) -> Name:
    return Name(region_name)


def select(child: RegionExpr | str, word: str, mode: str = "exact") -> Select:
    if isinstance(child, str):
        child = Name(child)
    return Select(child=child, word=word, mode=mode)


def including(left: RegionExpr | str, right: RegionExpr | str) -> Inclusion:
    return _inclusion(INCLUDING, left, right)


def directly_including(left: RegionExpr | str, right: RegionExpr | str) -> Inclusion:
    return _inclusion(DIRECTLY_INCLUDING, left, right)


def included(left: RegionExpr | str, right: RegionExpr | str) -> Inclusion:
    return _inclusion(INCLUDED, left, right)


def directly_included(left: RegionExpr | str, right: RegionExpr | str) -> Inclusion:
    return _inclusion(DIRECTLY_INCLUDED, left, right)


def union(left: RegionExpr | str, right: RegionExpr | str) -> SetOp:
    return SetOp("union", _coerce(left), _coerce(right))


def intersect(left: RegionExpr | str, right: RegionExpr | str) -> SetOp:
    return SetOp("intersect", _coerce(left), _coerce(right))


def difference(left: RegionExpr | str, right: RegionExpr | str) -> SetOp:
    return SetOp("difference", _coerce(left), _coerce(right))


def innermost(child: RegionExpr | str) -> Innermost:
    return Innermost(_coerce(child))


def outermost(child: RegionExpr | str) -> Outermost:
    return Outermost(_coerce(child))


def _coerce(node: RegionExpr | str) -> RegionExpr:
    return Name(node) if isinstance(node, str) else node


def _inclusion(op: str, left: RegionExpr | str, right: RegionExpr | str) -> Inclusion:
    return Inclusion(op=op, left=_coerce(left), right=_coerce(right))


def chain(
    names: Sequence[str],
    *,
    op: str = DIRECTLY_INCLUDING,
    word: str | None = None,
    mode: str = "exact",
) -> RegionExpr:
    """Build a right-grouped inclusion chain ``A1 op (A2 op (... op An))``.

    If ``word`` is given, the last name is wrapped in ``σ_word``.  This is
    the shape produced by query translation (Section 5.1):
    ``chain(["Reference", "Authors", "Name", "Last_Name"], word="Chang")``
    yields ``Reference >d Authors >d Name >d sigma[Chang](Last_Name)``.
    """
    if not names:
        raise AlgebraError("chain requires at least one region name")
    if op not in INCLUSION_OPS:
        raise AlgebraError(f"unknown inclusion operator {op!r}")
    last: RegionExpr = Name(names[-1])
    if word is not None:
        last = Select(child=last, word=word, mode=mode)
    expression = last
    for region_name in reversed(names[:-1]):
        expression = Inclusion(op=op, left=Name(region_name), right=expression)
    return expression


# -- pretty printing ---------------------------------------------------------


def pretty(expression: RegionExpr, unicode_symbols: bool = True) -> str:
    """Render an expression; round-trips through :func:`parse_expression`
    when ``unicode_symbols`` is false."""

    def render(node: RegionExpr, parent_is_inclusion: bool) -> str:
        if isinstance(node, Name):
            return node.region_name
        if isinstance(node, Select):
            ascii_keywords = {
                "exact": "sigma",
                "contains": "sigmac",
                "prefix": "sigmap",
                "prefix_contains": "sigmapc",
            }
            unicode_keywords = {
                "exact": "σ",
                "contains": "σc",
                "prefix": "σp",
                "prefix_contains": "σpc",
            }
            keyword = (
                unicode_keywords[node.mode] if unicode_symbols else ascii_keywords[node.mode]
            )
            return f"{keyword}[{node.word}]({render(node.child, False)})"
        if isinstance(node, Innermost):
            return f"innermost({render(node.child, False)})"
        if isinstance(node, Outermost):
            return f"outermost({render(node.child, False)})"
        if isinstance(node, Inclusion):
            symbol = _PRETTY[node.op] if unicode_symbols else node.op
            left = render(node.left, True)
            right = render(node.right, True)
            if isinstance(node.left, (Inclusion, SetOp)):
                left = f"({left})"
            if isinstance(node.right, SetOp):
                right = f"({right})"
            text = f"{left} {symbol} {right}"
            return text
        if isinstance(node, SetOp):
            symbol = _PRETTY[node.kind] if unicode_symbols else {"union": "|", "intersect": "&", "difference": "-"}[node.kind]
            left = render(node.left, False)
            right = render(node.right, False)
            if isinstance(node.right, SetOp):
                right = f"({right})"
            text = f"{left} {symbol} {right}"
            return f"({text})" if parent_is_inclusion else text
        raise AlgebraError(f"cannot render node {node!r}")

    return render(expression, False)


# -- parsing -----------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<op>>d|<d|>|<|&|\||-)"
    r"|(?P<select>(?:sigmapc|sigmap|sigmac|sigma|σpc|σp|σc|σ)\[(?P<word>[^\]]*)\])"
    r"|(?P<name>[A-Za-z_][A-Za-z0-9_@.]*)"
    r"|(?P<lparen>\()|(?P<rparen>\)))"
)


def parse_expression(text: str) -> RegionExpr:
    """Parse the ASCII expression syntax described in the module docstring."""
    tokens = _tokenize_expression(text)
    parser = _ExpressionParser(tokens, text)
    expression = parser.parse_set_expression()
    parser.expect_end()
    return expression


def _tokenize_expression(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise AlgebraError(f"cannot tokenize expression at: {remainder[:30]!r}")
        if match.group("op"):
            tokens.append(("op", match.group("op")))
        elif match.group("select"):
            keyword = match.group("select")
            if keyword.startswith(("sigmapc", "σpc")):
                mode = "prefix_contains"
            elif keyword.startswith(("sigmap", "σp")):
                mode = "prefix"
            elif keyword.startswith(("sigmac", "σc")):
                mode = "contains"
            else:
                mode = "exact"
            tokens.append(("select", f"{mode}:{match.group('word')}"))
        elif match.group("name"):
            tokens.append(("name", match.group("name")))
        elif match.group("lparen"):
            tokens.append(("lparen", "("))
        else:
            tokens.append(("rparen", ")"))
        position = match.end()
    return tokens


class _ExpressionParser:
    """Recursive-descent parser for the ASCII expression syntax."""

    def __init__(self, tokens: list[tuple[str, str]], source: str) -> None:
        self._tokens = tokens
        self._position = 0
        self._source = source

    def _peek(self) -> tuple[str, str] | None:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _advance(self) -> tuple[str, str]:
        token = self._tokens[self._position]
        self._position += 1
        return token

    def expect_end(self) -> None:
        if self._peek() is not None:
            raise AlgebraError(f"trailing input in expression {self._source!r}")

    def parse_set_expression(self) -> RegionExpr:
        left = self.parse_inclusion()
        while True:
            token = self._peek()
            if token is None or token[0] != "op" or token[1] not in ("&", "|", "-"):
                return left
            self._advance()
            kind = {"&": "intersect", "|": "union", "-": "difference"}[token[1]]
            right = self.parse_inclusion()
            left = SetOp(kind, left, right)

    def parse_inclusion(self) -> RegionExpr:
        left = self.parse_primary()
        token = self._peek()
        if token is not None and token[0] == "op" and token[1] in INCLUSION_OPS:
            self._advance()
            right = self.parse_inclusion()  # right associative
            return Inclusion(token[1], left, right)
        return left

    def parse_primary(self) -> RegionExpr:
        token = self._peek()
        if token is None:
            raise AlgebraError(f"unexpected end of expression {self._source!r}")
        kind, value = token
        if kind == "name":
            self._advance()
            if value in ("innermost", "outermost") and self._peek() == ("lparen", "("):
                self._advance()
                child = self.parse_set_expression()
                self._expect_rparen()
                return Innermost(child) if value == "innermost" else Outermost(child)
            return Name(value)
        if kind == "select":
            self._advance()
            mode, _, word = value.partition(":")
            if self._peek() != ("lparen", "("):
                raise AlgebraError("selection must be followed by a parenthesised expression")
            self._advance()
            child = self.parse_set_expression()
            self._expect_rparen()
            return Select(child=child, word=word, mode=mode)
        if kind == "lparen":
            self._advance()
            child = self.parse_set_expression()
            self._expect_rparen()
            return child
        raise AlgebraError(f"unexpected token {value!r} in expression {self._source!r}")

    def _expect_rparen(self) -> None:
        token = self._peek()
        if token != ("rparen", ")"):
            raise AlgebraError(f"expected ')' in expression {self._source!r}")
        self._advance()
