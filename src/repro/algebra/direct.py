"""The paper's layered program for direct inclusion (Section 3.1).

The paper shows that ``⊃d`` "can be computed using the other algebra
operators, by an algorithm that additionally uses a while construct", and
presents it to "give intuition about the cost of this operation, and in
particular to show that it is significantly more expensive than the simple
inclusion operation ⊃".

This module implements that layered program faithfully, built only from
``ω``, ``⊃``, ``⊂``, ``−`` and ``∪``:

    R_layer  := ω(R);  R_rest := R − R_layer;  R_result := ∅
    while (R_layer ⊃ S) ≠ ∅ do
        shielded := ∪_{T ∈ Z−{S}} ( S ⊂ (T strictly inside R_layer) )
        R_result := R_result ∪ (R_layer ⊃ (S − shielded))
        R_layer  := ω(R_rest);  R_rest := R_rest − R_layer
    end
    return R_result

The program is exact on *laminar* instances (no two indexed regions
partially overlap) — which is what parse trees produce, the paper's
application domain.  The evaluator's pairwise ``⊃d`` in
:mod:`repro.algebra.ops` is the reference semantics for arbitrary instances;
benchmark E3 runs both to expose the cost gap the paper describes.
"""

from __future__ import annotations

from repro.algebra import ops
from repro.algebra.counters import OperationCounters
from repro.algebra.region import Instance, Region, RegionSet


def _strictly_included(inner: RegionSet, outer: RegionSet, counters: OperationCounters | None) -> RegionSet:
    """Regions of ``inner`` strictly included (distinct extent) in some
    region of ``outer`` — the "T strictly inside the layer" step."""
    kept: list[Region] = []
    for region in inner:
        if outer.any_strictly_including(region):
            kept.append(region)
    result = RegionSet(kept)
    if counters is not None:
        counters.record("⊂", comparisons=len(inner), produced=len(result))
    return result


def _shielded(
    targets: RegionSet,
    layer: RegionSet,
    instance: Instance,
    counters: OperationCounters | None,
) -> RegionSet:
    """The S regions hidden from the current layer by an intervening indexed
    region: some indexed ``t`` strictly inside a layer region strictly
    includes them."""
    shielded = RegionSet.empty()
    for _, indexed_set in instance.items():
        blockers = _strictly_included(indexed_set, layer, counters)
        if not blockers:
            continue
        covered: list[Region] = []
        for target in targets:
            if any(blocker != target for blocker in _including_iter(blockers, target)):
                covered.append(target)
        if counters is not None:
            counters.record("⊂", comparisons=len(targets), produced=len(covered))
        shielded = ops.union(shielded, RegionSet(covered), counters)
    return shielded


def _including_iter(candidates: RegionSet, target: Region):
    count = candidates.first_index_with_start_greater(target.start)
    for index in range(count):
        region = candidates.region_at(index)
        if region.end >= target.end:
            yield region


def layered_directly_including(
    left: RegionSet,
    right: RegionSet,
    instance: Instance,
    counters: OperationCounters | None = None,
) -> RegionSet:
    """Compute ``left ⊃d right`` with the paper's layered while-loop.

    Iterates over nested layers of ``left`` (outermost first) and, for each
    layer, selects the layer regions that include a ``right`` region not
    shielded by an intervening indexed region.
    """
    layer = ops.outermost(left, counters)
    rest = ops.difference(left, layer, counters)
    result = RegionSet.empty()
    while layer:
        if ops.including(layer, right, counters):
            visible = ops.difference(right, _shielded(right, layer, instance, counters), counters)
            result = ops.union(result, ops.including(layer, visible, counters), counters)
        if not rest:
            break
        layer = ops.outermost(rest, counters)
        rest = ops.difference(rest, layer, counters)
    return result


def is_laminar(instance: Instance) -> bool:
    """True when no two indexed regions partially overlap.

    Laminar families are exactly the instances produced by parse trees; the
    layered program above is exact on them.
    """
    regions = list(instance.all_regions())
    # Sweep in (start, -end) order keeping a stack of open regions.
    regions.sort(key=lambda region: (region.start, -region.end))
    stack: list[Region] = []
    for region in regions:
        while stack and stack[-1].end <= region.start:
            stack.pop()
        if stack and not stack[-1].includes(region):
            return False
        stack.append(region)
    return True
