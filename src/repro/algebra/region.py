"""Regions, region sets, and region instances.

A *region* is a substring of the indexed text "defined by a pair of positions
in the text corresponding to the beginning and end of the region" (Section
3.1).  We use half-open ``[start, end)`` character offsets.  The paper's
inclusion relation ``r ⊒ s`` ("the endpoints of s are within those of r")
maps to ``r.start <= s.start and s.end <= r.end``.

A :class:`RegionSet` is an immutable, duplicate-free, sorted collection of
regions; the paper's instances put "no restrictions on overlaps", so nothing
here assumes nesting or disjointness.  An :class:`Instance` maps region names
to region sets (Definition: "An instance I of a region index Z is a mapping
associating an instance Ri(I) to each region name Ri").
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.errors import RegionError


@dataclass(frozen=True, order=True)
class Region:
    """A half-open span ``[start, end)`` of the corpus text.

    Regions sort by ``(start, end)``; this is the canonical order used by all
    merge-based set operations.  A zero-width region (``start == end``) is a
    *match point* in the paper's terminology.
    """

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.start < 0:
            raise RegionError(f"region start {self.start} is negative")
        if self.end < self.start:
            raise RegionError(f"region end {self.end} precedes start {self.start}")

    # -- inclusion tests (the paper's ⊒ relation) --------------------------

    def includes(self, other: "Region") -> bool:
        """``self ⊒ other``: other's endpoints lie within self's."""
        return self.start <= other.start and other.end <= self.end

    def strictly_includes(self, other: "Region") -> bool:
        """``self ⊐ other``: inclusion between distinct extents."""
        return self.includes(other) and self != other

    def overlaps(self, other: "Region") -> bool:
        """True when the two spans share at least one position."""
        return self.start < other.end and other.start < self.end

    def __len__(self) -> int:
        return self.end - self.start

    def text(self, corpus_text: str) -> str:
        """The substring of ``corpus_text`` this region denotes."""
        return corpus_text[self.start : self.end]

    def __repr__(self) -> str:  # compact for test failure output
        return f"Region({self.start}, {self.end})"


class RegionSet:
    """An immutable sorted set of :class:`Region` values.

    All operators of the region algebra consume and produce region sets.  The
    internal representation is a sorted tuple (by ``(start, end)``) plus two
    parallel offset arrays used for binary searching during inclusion joins.
    """

    __slots__ = ("_regions", "_starts", "_ends", "_prefix_max_end")

    def __init__(self, regions: Iterable[Region] = ()) -> None:
        unique = sorted(set(regions))
        self._regions: tuple[Region, ...] = tuple(unique)
        self._starts: list[int] = [region.start for region in unique]
        self._ends: list[int] = [region.end for region in unique]
        # prefix_max_end[i] = max end among regions[0..i]; supports O(log n)
        # "is some region including r" tests (see included_in / outermost).
        prefix: list[int] = []
        best = -1
        for end in self._ends:
            best = end if end > best else best
            prefix.append(best)
        self._prefix_max_end = prefix

    # -- construction helpers ---------------------------------------------

    @classmethod
    def empty(cls) -> "RegionSet":
        return _EMPTY

    @classmethod
    def of(cls, *pairs: tuple[int, int]) -> "RegionSet":
        """Build from ``(start, end)`` pairs (test convenience)."""
        return cls(Region(start, end) for start, end in pairs)

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def __contains__(self, region: object) -> bool:
        if not isinstance(region, Region):
            return False
        index = bisect_left(self._regions, region)
        return index < len(self._regions) and self._regions[index] == region

    def __eq__(self, other: object) -> bool:
        if isinstance(other, RegionSet):
            return self._regions == other._regions
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._regions)

    def __repr__(self) -> str:
        inner = ", ".join(f"({r.start},{r.end})" for r in self._regions[:8])
        suffix = ", ..." if len(self._regions) > 8 else ""
        return f"RegionSet[{inner}{suffix}]"

    def __bool__(self) -> bool:
        return bool(self._regions)

    @property
    def regions(self) -> tuple[Region, ...]:
        return self._regions

    # -- search primitives used by the operators ---------------------------

    def first_index_with_start_at_least(self, position: int) -> int:
        """Index of the first region whose start is >= ``position``."""
        return bisect_left(self._starts, position)

    def first_index_with_start_greater(self, position: int) -> int:
        """Index of the first region whose start is > ``position``."""
        return bisect_right(self._starts, position)

    def region_at(self, index: int) -> Region:
        return self._regions[index]

    def any_including(self, target: Region) -> bool:
        """Is there a region in this set that includes ``target``?

        Uses the prefix-max-end array: candidates are exactly the regions
        with ``start <= target.start``; among those, one includes ``target``
        iff the maximum end is ``>= target.end``.
        """
        count = self.first_index_with_start_greater(target.start)
        if count == 0:
            return False
        return self._prefix_max_end[count - 1] >= target.end

    def any_strictly_including(self, target: Region) -> bool:
        """Is there a region with a *different extent* including ``target``?"""
        count = self.first_index_with_start_greater(target.start)
        if count == 0:
            return False
        if self._prefix_max_end[count - 1] < target.end:
            return False
        # The prefix max might be realised only by target itself; check for a
        # distinct witness by scanning the (rare) ambiguous window.
        for index in range(count - 1, -1, -1):
            if self._prefix_max_end[index] < target.end:
                break
            region = self._regions[index]
            if region.end >= target.end and region != target:
                return True
        return False

    def any_included_in(self, container: Region) -> bool:
        """Is there a region in this set included in ``container``?"""
        index = self.first_index_with_start_at_least(container.start)
        while index < len(self._regions) and self._starts[index] <= container.end:
            if self._ends[index] <= container.end:
                return True
            index += 1
        return False

    def iter_included_in(self, container: Region) -> Iterator[Region]:
        """Yield regions of this set included in ``container``."""
        index = self.first_index_with_start_at_least(container.start)
        while index < len(self._regions) and self._starts[index] <= container.end:
            if self._ends[index] <= container.end:
                yield self._regions[index]
            index += 1

    def any_strictly_between(self, outer: Region, inner: Region) -> bool:
        """Is some region ``t`` of this set *between* outer and inner?

        "Between" follows the paper's direct-inclusion semantics: ``outer ⊒ t``
        and ``t ⊒ inner`` with ``t``'s extent different from both.  Regions
        with the same extent as ``outer`` or ``inner`` do not break direct
        inclusion (coincident regions of different names are common, e.g. an
        ``Authors`` list with a single ``Name``).
        """
        index = self.first_index_with_start_at_least(outer.start)
        while index < len(self._regions) and self._starts[index] <= inner.start:
            candidate = self._regions[index]
            if (
                candidate.end <= outer.end
                and candidate.end >= inner.end
                and candidate != outer
                and candidate != inner
            ):
                return True
            index += 1
        return False


_EMPTY = RegionSet()


class Instance:
    """A mapping from region names to region sets (one indexed file state).

    The union of all region sets is the set of *indexed regions*; direct
    inclusion ``⊃d`` is defined relative to it ("there is no other *indexed*
    region between r and s").  The merged view is materialised lazily and
    cached, because every ``⊃d``/``⊂d`` evaluation consults it.
    """

    def __init__(self, mapping: Mapping[str, RegionSet | Iterable[Region]] | None = None) -> None:
        self._sets: dict[str, RegionSet] = {}
        self._all: RegionSet | None = None
        if mapping:
            for region_name, regions in mapping.items():
                self.assign(region_name, regions)

    def assign(self, region_name: str, regions: RegionSet | Iterable[Region]) -> None:
        """Set the instance of ``region_name`` (replacing any previous one)."""
        region_set = regions if isinstance(regions, RegionSet) else RegionSet(regions)
        self._sets[region_name] = region_set
        self._all = None

    def get(self, region_name: str) -> RegionSet:
        """The region set for ``region_name`` (empty if never assigned)."""
        return self._sets.get(region_name, _EMPTY)

    def __contains__(self, region_name: str) -> bool:
        return region_name in self._sets

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._sets))

    def items(self) -> Iterator[tuple[str, RegionSet]]:
        return iter(self._sets.items())

    def all_regions(self) -> RegionSet:
        """All indexed regions, merged (distinct extents)."""
        if self._all is None:
            merged: set[Region] = set()
            for region_set in self._sets.values():
                merged.update(region_set)
            self._all = RegionSet(merged)
        return self._all

    def total_region_count(self) -> int:
        """Total number of index entries (sum over names, with multiplicity)."""
        return sum(len(region_set) for region_set in self._sets.values())

    def restrict(self, names: Iterable[str]) -> "Instance":
        """A new instance keeping only the given region names.

        This models *partial indexing*: the same file, with fewer region
        indexes built.
        """
        keep = set(names)
        return Instance({n: s for n, s in self._sets.items() if n in keep})
