"""Set-at-a-time operators of the region algebra (Section 3.1).

Every operator takes and returns :class:`~repro.algebra.region.RegionSet`
values and optionally reports its work to an
:class:`~repro.algebra.counters.OperationCounters`.

Semantics follow the paper:

- ``∪, ∩, −`` — ordinary set operations on sets of regions;
- ``σ_w`` — selection: the regions "containing (exactly) the word w";
  we expose both readings: ``mode="exact"`` (the region *is* the word, i.e.
  it contains that word occurrence and no other word) and
  ``mode="contains"`` (the region contains at least one occurrence);
- ``ι`` (innermost) — regions including no other region of the set;
- ``ω`` (outermost) — regions included in no other region of the set;
- ``⊃`` / ``⊂`` — inclusion joins returning the left operand's survivors;
- ``⊃d`` / ``⊂d`` — *direct* inclusion: additionally, no other indexed
  region may sit between the pair.  "Other indexed region" means a region of
  a different extent occurring anywhere in the instance, matching the
  paper's "there is no other indexed region between r and s".

Inclusion is extent-based and non-strict (two regions with identical
endpoints include each other); direct inclusion treats regions whose extent
coincides with either endpoint as *not* between — so a parse-tree edge is
always a direct inclusion even when parent and child spans coincide.
"""

from __future__ import annotations

from typing import Iterable

from repro.algebra.counters import OperationCounters
from repro.algebra.region import Instance, Region, RegionSet

_NO_COUNTERS = OperationCounters()


def union(left: RegionSet, right: RegionSet, counters: OperationCounters | None = None) -> RegionSet:
    result = RegionSet(set(left.regions) | set(right.regions))
    if counters is not None:
        counters.record("∪", comparisons=len(left) + len(right), produced=len(result))
    return result


def intersect(left: RegionSet, right: RegionSet, counters: OperationCounters | None = None) -> RegionSet:
    small, large = (left, right) if len(left) <= len(right) else (right, left)
    result = RegionSet(region for region in small if region in large)
    if counters is not None:
        counters.record("∩", comparisons=len(small), produced=len(result))
    return result


def difference(left: RegionSet, right: RegionSet, counters: OperationCounters | None = None) -> RegionSet:
    result = RegionSet(region for region in left if region not in right)
    if counters is not None:
        counters.record("−", comparisons=len(left), produced=len(result))
    return result


def select_word(
    regions: RegionSet,
    occurrences: RegionSet,
    *,
    mode: str = "exact",
    token_counter=None,
    counters: OperationCounters | None = None,
) -> RegionSet:
    """Selection ``σ_w``: filter ``regions`` by word content.

    Parameters
    ----------
    regions:
        The candidate region set ``R``.
    occurrences:
        The match points of the word ``w`` (from the word index), as
        word-width regions.
    mode:
        ``"exact"`` — the region *is* the word: it includes an occurrence of
        ``w`` and contains exactly one word token overall (whitespace,
        quotes, and punctuation around the word are ignored, matching the
        paper's ``σ_"Chang"(Last_Name)`` examples).
        ``"contains"`` — the region includes at least one occurrence of
        ``w`` (useful for long fields such as ``ABSTRACT``).
    token_counter:
        Callable ``(start, end) -> int`` returning how many word tokens fall
        inside a span; required for ``mode="exact"`` (the word index provides
        it).
    """
    if mode not in ("exact", "contains"):
        raise ValueError(f"unknown selection mode {mode!r}")
    if mode == "exact" and token_counter is None:
        raise ValueError("mode='exact' requires a token_counter")
    comparisons = 0
    selected: list[Region] = []
    for region in regions:
        comparisons += 1
        if not occurrences.any_included_in(region):
            continue
        if mode == "exact":
            comparisons += 1
            if token_counter(region.start, region.end) != 1:
                continue
        selected.append(region)
    result = RegionSet(selected)
    if counters is not None:
        counters.record("σ", comparisons=comparisons, produced=len(result))
    return result


def innermost(regions: RegionSet, counters: OperationCounters | None = None) -> RegionSet:
    """``ι``: regions of the set that include no *other* region of the set."""
    kept: list[Region] = []
    comparisons = 0
    for region in regions:
        comparisons += 1
        has_inner = any(other != region for other in regions.iter_included_in(region))
        if not has_inner:
            kept.append(region)
    result = RegionSet(kept)
    if counters is not None:
        counters.record("ι", comparisons=comparisons, produced=len(result))
    return result


def outermost(regions: RegionSet, counters: OperationCounters | None = None) -> RegionSet:
    """``ω``: regions of the set included in no *other* region of the set."""
    kept = [region for region in regions if not regions.any_strictly_including(region)]
    result = RegionSet(kept)
    if counters is not None:
        counters.record("ω", comparisons=len(regions), produced=len(result))
    return result


def including(left: RegionSet, right: RegionSet, counters: OperationCounters | None = None) -> RegionSet:
    """``R ⊃ S``: the regions of ``left`` that include some region of ``right``."""
    kept = [region for region in left if right.any_included_in(region)]
    result = RegionSet(kept)
    if counters is not None:
        counters.record("⊃", comparisons=len(left), produced=len(result))
    return result


def included(left: RegionSet, right: RegionSet, counters: OperationCounters | None = None) -> RegionSet:
    """``R ⊂ S``: the regions of ``left`` included in some region of ``right``."""
    kept = [region for region in left if right.any_including(region)]
    result = RegionSet(kept)
    if counters is not None:
        counters.record("⊂", comparisons=len(left), produced=len(result))
    return result


def directly_including(
    left: RegionSet,
    right: RegionSet,
    instance: Instance,
    counters: OperationCounters | None = None,
) -> RegionSet:
    """``R ⊃d S``: regions of ``left`` that *directly* include a region of
    ``right`` — no other indexed region of the instance lies between."""
    all_indexed = instance.all_regions()
    kept: list[Region] = []
    comparisons = 0
    for region in left:
        comparisons += 1
        for candidate in right.iter_included_in(region):
            comparisons += 1
            if not all_indexed.any_strictly_between(region, candidate):
                kept.append(region)
                break
    result = RegionSet(kept)
    if counters is not None:
        counters.record("⊃d", comparisons=comparisons, produced=len(result))
    return result


def directly_included(
    left: RegionSet,
    right: RegionSet,
    instance: Instance,
    counters: OperationCounters | None = None,
) -> RegionSet:
    """``R ⊂d S``: regions of ``left`` directly included in a region of
    ``right``."""
    all_indexed = instance.all_regions()
    kept: list[Region] = []
    comparisons = 0
    for region in left:
        comparisons += 1
        for container in _iter_including(right, region):
            comparisons += 1
            if not all_indexed.any_strictly_between(container, region):
                kept.append(region)
                break
    result = RegionSet(kept)
    if counters is not None:
        counters.record("⊂d", comparisons=comparisons, produced=len(result))
    return result


def _iter_including(candidates: RegionSet, target: Region) -> Iterable[Region]:
    """Yield regions of ``candidates`` that include ``target``."""
    count = candidates.first_index_with_start_greater(target.start)
    for index in range(count):
        region = candidates.region_at(index)
        if region.end >= target.end:
            yield region


# -- brute-force reference implementations (used by property tests) ---------


def brute_force_directly_including(left: RegionSet, right: RegionSet, instance: Instance) -> RegionSet:
    """Quadratic reference semantics for ``⊃d`` (pairwise definition)."""
    all_indexed = list(instance.all_regions())
    kept = []
    for region in left:
        for candidate in right:
            if not region.includes(candidate):
                continue
            between = any(
                region.includes(t) and t.includes(candidate) and t != region and t != candidate
                for t in all_indexed
            )
            if not between:
                kept.append(region)
                break
    return RegionSet(kept)


def brute_force_directly_included(left: RegionSet, right: RegionSet, instance: Instance) -> RegionSet:
    """Quadratic reference semantics for ``⊂d``."""
    all_indexed = list(instance.all_regions())
    kept = []
    for region in left:
        for container in right:
            if not container.includes(region):
                continue
            between = any(
                container.includes(t) and t.includes(region) and t != container and t != region
                for t in all_indexed
            )
            if not between:
                kept.append(region)
                break
    return RegionSet(kept)
