"""Operation counters for cost instrumentation.

The paper argues about *relative* operator costs (e.g. that ``⊃d`` "is
significantly more expensive than the simple inclusion operation ⊃", Section
3.1).  To make those costs observable without relying on wall-clock noise,
every algebra operator reports its work to an :class:`OperationCounters`
object: number of operator applications, region comparisons performed, and
regions produced.  The benchmark harness reads these alongside timings.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass
class OperationCounters:
    """Mutable tally of algebra work.

    Attributes
    ----------
    operations:
        Count of operator applications, keyed by operator symbol
        (``"∪"``, ``"∩"``, ``"−"``, ``"σ"``, ``"ι"``, ``"ω"``, ``"⊃"``,
        ``"⊂"``, ``"⊃d"``, ``"⊂d"``, ``"name"``).
    comparisons:
        Region comparisons (inclusion tests, betweenness probes, merge
        steps) performed by the operators.
    regions_out:
        Total regions produced across all operator applications.
    bytes_scanned:
        Bytes of raw file text read (only non-index paths: selection content
        checks, candidate-region parsing).
    """

    operations: Counter = field(default_factory=Counter)
    comparisons: int = 0
    regions_out: int = 0
    bytes_scanned: int = 0

    def record(self, operator: str, comparisons: int = 0, produced: int = 0) -> None:
        self.operations[operator] += 1
        self.comparisons += comparisons
        self.regions_out += produced

    def scan(self, byte_count: int) -> None:
        self.bytes_scanned += byte_count

    def merge(self, other: "OperationCounters") -> None:
        """Fold another tally into this one."""
        self.operations.update(other.operations)
        self.comparisons += other.comparisons
        self.regions_out += other.regions_out
        self.bytes_scanned += other.bytes_scanned

    @property
    def total_operations(self) -> int:
        return sum(self.operations.values())

    def snapshot(self) -> dict[str, int]:
        """A flat dict view, convenient for benchmark reporting."""
        summary = {f"op:{symbol}": count for symbol, count in sorted(self.operations.items())}
        summary["comparisons"] = self.comparisons
        summary["regions_out"] = self.regions_out
        summary["bytes_scanned"] = self.bytes_scanned
        return summary

    def reset(self) -> None:
        self.operations.clear()
        self.comparisons = 0
        self.regions_out = 0
        self.bytes_scanned = 0
