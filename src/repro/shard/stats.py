"""Statistics for sharded query execution.

:class:`ShardedStats` plays the role :class:`~repro.obs.stats.QueryStats`
plays for a single engine: one facade with a stable ``to_dict()``.  Its
shape is a superset of the single-engine one — every documented
``QueryStats.to_dict()`` key is present with corpus-wide aggregates
(sums over the shards that produced rows), plus a ``"shards"`` list with
one record per shard: status, attempts/retries, wall-time, rows,
strategy, and the circuit-breaker state observed at the end of the
query.  The CLI's ``--json`` output and EXPLAIN ANALYZE both embed it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.resilience.warnings import QueryWarning

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import QueryResult
    from repro.obs.trace import Trace

#: Shard outcome statuses (stable strings, matched by tests and CI).
OK = "ok"
FAILED = "failed"
SKIPPED = "skipped"


@dataclass
class ShardExecution:
    """What happened on one shard during one sharded query."""

    shard: str
    status: str  # ok | failed | skipped
    attempts: int = 1
    retries: int = 0
    duration_s: float = 0.0
    rows: int = 0
    strategy: str | None = None
    breaker: dict[str, Any] = field(default_factory=dict)
    error: str | None = None
    warnings: list[QueryWarning] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "shard": self.shard,
            "status": self.status,
            "attempts": self.attempts,
            "retries": self.retries,
            "duration_s": self.duration_s,
            "rows": self.rows,
            "strategy": self.strategy,
            "breaker": dict(self.breaker),
            "error": self.error,
            "warnings": [warning.to_dict() for warning in self.warnings],
        }


class ShardedStats:
    """Aggregated statistics for one scatter-gather query.

    Attributes
    ----------
    shards:
        One :class:`ShardExecution` per shard, in shard order.
    warnings:
        The merged warning stream: shard-level incidents
        (``shard-failed`` / ``shard-retried`` /
        ``shard-skipped-open-breaker`` / ``partial-result``) interleaved
        with each healthy shard's own warnings, every ``detail`` tagged
        with its shard name.
    trace:
        The scatter-gather :class:`~repro.obs.trace.Trace` (one
        ``shard:<name>`` span per shard, each healthy shard's own pipeline
        trace grafted beneath), or ``None`` when tracing is off.
    """

    __slots__ = ("shards", "warnings", "trace", "duration_s", "_results")

    def __init__(
        self,
        shards: list[ShardExecution],
        warnings: list[QueryWarning],
        duration_s: float,
        trace: "Trace | None" = None,
        results: "list[QueryResult] | None" = None,
    ) -> None:
        self.shards = shards
        self.warnings = warnings
        self.trace = trace
        self.duration_s = duration_s
        self._results = results if results is not None else []

    # -- aggregate views -------------------------------------------------------

    @property
    def strategy(self) -> str:
        return "sharded"

    @property
    def rows(self) -> int:
        return sum(record.rows for record in self.shards)

    def _sum(self, attribute: str) -> int:
        return sum(
            getattr(result.stats, attribute) for result in self._results
        )

    @property
    def healthy_shards(self) -> int:
        return sum(1 for record in self.shards if record.status == OK)

    @property
    def failed_shards(self) -> int:
        return sum(1 for record in self.shards if record.status == FAILED)

    @property
    def skipped_shards(self) -> int:
        return sum(1 for record in self.shards if record.status == SKIPPED)

    @property
    def retries(self) -> int:
        return sum(record.retries for record in self.shards)

    def _merged_algebra(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for result in self._results:
            for key, value in result.stats.algebra.snapshot().items():
                merged[key] = merged.get(key, 0) + value
        return merged

    def _merged_replans(self) -> list[dict[str, Any]]:
        """Per-shard adaptive-replan records, each tagged with its shard."""
        merged: list[dict[str, Any]] = []
        for record, result in zip(
            (record for record in self.shards if record.status == OK),
            self._results,
        ):
            for replan in result.stats.replans:
                merged.append({**dict(replan), "shard": record.shard})
        return merged

    def _merged_cache(self) -> dict[str, int]:
        merged = {
            "expression_hits": 0,
            "expression_misses": 0,
            "parse_hits": 0,
            "parse_misses": 0,
            "bytes_parse_avoided": 0,
        }
        for result in self._results:
            for key, value in result.stats.cache.items():
                merged[key] = merged.get(key, 0) + value
        return merged

    # -- export ---------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """The stable JSON shape: every documented
        :meth:`~repro.obs.stats.QueryStats.to_dict` key (aggregated over
        healthy shards) plus ``shards`` (per-shard records)."""
        return {
            "strategy": self.strategy,
            "rows": self.rows,
            "candidate_regions": self._sum("candidate_regions"),
            "result_regions": self._sum("result_regions"),
            "bytes_parsed": self._sum("bytes_parsed"),
            "values_built": self._sum("values_built"),
            "objects_filtered_out": self._sum("objects_filtered_out"),
            "join_bytes_compared": self._sum("join_bytes_compared"),
            "algebra": self._merged_algebra(),
            "cache": self._merged_cache(),
            "warnings": [warning.to_dict() for warning in self.warnings],
            "replans": self._merged_replans(),
            "duration_s": self.duration_s,
            "trace": self.trace.to_dict() if self.trace is not None else None,
            "shards": [record.to_dict() for record in self.shards],
        }

    def summary(self) -> str:
        """Human-readable per-shard table plus corpus totals."""
        lines = [
            f"strategy:          sharded ({self.healthy_shards}/"
            f"{len(self.shards)} shards healthy)",
            f"results:           {self.rows} rows",
            f"bytes parsed:      {self._sum('bytes_parsed')}",
        ]
        if self.warnings:
            lines.append(f"warnings:          {len(self.warnings)}")
        lines.append(f"wall time:         {self.duration_s * 1e3:.3f} ms")
        lines.append("shards:")
        for record in self.shards:
            detail = (
                f"{record.rows} rows, {record.strategy}"
                if record.status == OK
                else (record.error or record.status)
            )
            retried = f", {record.retries} retr." if record.retries else ""
            lines.append(
                f"  {record.shard:<20} {record.status:<8} "
                f"{record.duration_s * 1e3:8.2f} ms  "
                f"breaker={record.breaker.get('state', '?')}{retried}  {detail}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedStats({self.healthy_shards}/{len(self.shards)} healthy, "
            f"rows={self.rows})"
        )
