"""Shard manifests: one root ``manifest.json`` over N saved shard indexes.

A sharded index directory extends the v2 single-index layout of
:mod:`repro.index.persist` one level up::

    <root>/
      manifest.json          kind="sharded", schema fingerprint, and one
                             entry per shard: name, relative directory,
                             corpus fingerprint, optional source identity
      shards/<nnn>-<name>/   a complete v2 single-index directory each
                             (own manifest, checksums, corpus, regions)

The root manifest carries *per-shard fingerprints* so staleness and
placement can be checked without opening every shard, while integrity of
each shard's files stays the job of that shard's own v2 manifest — damage
to one shard is detected (and isolated) when that shard loads, never
earlier.

Typed failures mirror the single-index contract:
:class:`~repro.errors.IndexNotFoundError` when the root is not a sharded
index, :class:`~repro.errors.IndexCorruptError` when the root manifest
exists but is unreadable or structurally wrong.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import IndexCorruptError, IndexNotFoundError

#: Root-manifest format: same versioned family as the single-index
#: manifest (format_version 2) plus the sharded extension marker.
MANIFEST_KIND = "sharded"
SHARD_FORMAT_VERSION = 1
SHARDS_SUBDIR = "shards"

_SLUG_RE = re.compile(r"[^A-Za-z0-9._-]+")


def shard_slug(name: str, index: int) -> str:
    """A filesystem-safe shard directory name: ``<nnn>-<sanitized name>``."""
    base = _SLUG_RE.sub("-", os.path.basename(name)).strip("-") or "shard"
    return f"{index:03d}-{base[:48]}"


@dataclass(frozen=True)
class ShardEntry:
    """One shard's row in the root manifest.

    ``directory`` is relative to the root (portable: the whole tree can be
    moved); ``source`` mirrors the per-shard v2 manifest's source identity
    (path/mtime/size) when the shard was built from a file.
    """

    name: str
    directory: str
    corpus_fingerprint: str
    source: dict[str, Any] | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "directory": self.directory,
            "corpus_fingerprint": self.corpus_fingerprint,
            "source": dict(self.source) if self.source is not None else None,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ShardEntry":
        return cls(
            name=data["name"],
            directory=data["directory"],
            corpus_fingerprint=data["corpus_fingerprint"],
            source=data.get("source"),
        )


@dataclass(frozen=True)
class ShardManifest:
    """The parsed root manifest of a sharded index directory."""

    shards: tuple[ShardEntry, ...]
    schema_fingerprint: str | None = None
    format_version: int = SHARD_FORMAT_VERSION
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "format_version": 2,
            "kind": MANIFEST_KIND,
            "shard_format_version": self.format_version,
            "schema_fingerprint": self.schema_fingerprint,
            "shards": [entry.to_dict() for entry in self.shards],
        }


def is_sharded_index(directory: str | os.PathLike[str]) -> bool:
    """Cheap dispatch test: does ``directory`` hold a *sharded* index (as
    opposed to a single-engine v1/v2 index or nothing at all)?"""
    path = Path(directory) / "manifest.json"
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return False
    return isinstance(data, dict) and data.get("kind") == MANIFEST_KIND


def save_shard_manifest(
    directory: str | os.PathLike[str], manifest: ShardManifest
) -> None:
    """Write the root manifest (the shard directories must already be
    saved — the manifest is the commit point listing only complete shards)."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    tmp = path / f".manifest.json.tmp-{os.getpid()}"
    tmp.write_text(json.dumps(manifest.to_dict(), indent=2), encoding="utf-8")
    os.replace(tmp, path / "manifest.json")


def load_shard_manifest(directory: str | os.PathLike[str]) -> ShardManifest:
    """Parse the root manifest of a sharded index directory.

    Raises :class:`IndexNotFoundError` when no manifest exists or it is
    not a sharded one, and :class:`IndexCorruptError` when a sharded
    manifest exists but cannot be trusted (unparseable, wrong structure,
    unsupported shard format version).
    """
    root = Path(directory)
    path = root / "manifest.json"
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise IndexNotFoundError(str(root), "missing manifest.json") from None
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as error:
        raise IndexCorruptError(
            str(root), f"shard manifest unreadable: {error}", part="manifest.json"
        ) from None
    if not isinstance(data, dict):
        raise IndexCorruptError(
            str(root), "shard manifest is not an object", part="manifest.json"
        )
    if data.get("kind") != MANIFEST_KIND:
        raise IndexNotFoundError(
            str(root), "manifest.json is not a sharded-index manifest"
        )
    version = data.get("shard_format_version")
    if version != SHARD_FORMAT_VERSION:
        raise IndexCorruptError(
            str(root),
            f"unsupported shard manifest version {version!r} "
            f"(supported: {SHARD_FORMAT_VERSION})",
            part="manifest.json",
        )
    raw_shards = data.get("shards")
    if not isinstance(raw_shards, list) or not raw_shards:
        raise IndexCorruptError(
            str(root), "shard manifest lists no shards", part="manifest.json"
        )
    try:
        entries = tuple(ShardEntry.from_dict(item) for item in raw_shards)
    except (KeyError, TypeError) as error:
        raise IndexCorruptError(
            str(root),
            f"malformed shard entry: {error!r}",
            part="manifest.json",
        ) from None
    names = [entry.name for entry in entries]
    if len(set(names)) != len(names):
        raise IndexCorruptError(
            str(root), "duplicate shard names in manifest", part="manifest.json"
        )
    return ShardManifest(
        shards=entries,
        schema_fingerprint=data.get("schema_fingerprint"),
        format_version=version,
    )
