"""Schema-aware corpus splitting.

Cutting a file into shards at arbitrary byte offsets would slice records
in half and make every shard unparseable.  The structuring schema already
knows where records begin and end: parse the corpus once, take the top
level of the parse tree (the direct children of the start symbol — one
node per record in every shipped workload grammar), and partition those
*whole records* into contiguous, byte-balanced groups.  Each group's text
slice is then a valid corpus for the same schema by construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import GrammarError

if TYPE_CHECKING:  # pragma: no cover
    from repro.schema.structuring import StructuringSchema


def split_corpus(schema: "StructuringSchema", text: str, shards: int) -> list[str]:
    """Split ``text`` into at most ``shards`` contiguous chunks at
    top-level record boundaries.

    Shards are balanced by bytes, greedily: each shard takes records until
    it reaches its fair share of the remaining text.  Fewer records than
    requested shards yields one shard per record (never an empty shard).
    Raises :class:`~repro.errors.GrammarError` when the corpus has no
    top-level records to split, and lets the schema's own
    :class:`~repro.errors.ParseError` propagate for unparseable input.

    The chunks tile the corpus: ``"".join(split_corpus(s, text, n)) ==
    text``, byte for byte.  Inter-record separator bytes (and any corpus
    prefix/suffix) travel with the chunk they precede — safe because the
    grammars skip leading whitespace and tolerate trailing whitespace —
    so the logical corpus can always be reconstructed from the shards
    exactly, which is what crash recovery rebuilds are compared against.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards!r}")
    tree = schema.parse(text)
    records = list(tree.children)
    if not records:
        raise GrammarError(
            f"corpus has no top-level <{tree.symbol}> records to shard"
        )
    shards = min(shards, len(records))
    total = records[-1].end - records[0].start
    chunks: list[str] = []
    cursor = 0
    chunk_start = 0
    for remaining in range(shards, 0, -1):
        if remaining == 1:
            group = records[cursor:]
        else:
            spent = records[cursor].start - records[0].start
            target = (total - spent) / remaining
            group = [records[cursor]]
            next_cursor = cursor + 1
            # Leave at least one record for each shard still to come.
            while (
                next_cursor < len(records) - (remaining - 1)
                and records[next_cursor].end - records[cursor].start <= target
            ):
                group.append(records[next_cursor])
                next_cursor += 1
        cursor += len(group)
        chunk_end = len(text) if remaining == 1 else group[-1].end
        chunks.append(text[chunk_start:chunk_end])
        chunk_start = chunk_end
    return chunks
