"""Replica sets: routing reads across N persisted copies of one shard.

A shard saved with ``replicas=N`` (see :func:`repro.index.persist.save_index`)
keeps N complete sibling indexes under ``replica-{i}/`` directories, with a
``kind="replicated"`` shard-level manifest recording the replica map and the
corpus fingerprint every replica must match.  :class:`ReplicaSet` is the read
path over that layout:

- each replica gets its **own circuit breaker**, so one damaged copy is
  skipped cheaply after it trips while its siblings keep serving;
- a replica is routed to only when its own manifest's corpus fingerprint
  matches the shard manifest's expectation — a replica that *diverged*
  (crash mid-compaction fan-out) is just as unservable as a corrupt one,
  even though it verifies against itself;
- load failures that are **replica-local** — typed corrupt/stale/missing
  errors and transient I/O — fail over to the next replica and surface as
  ``replica-failover`` warnings; anything else (schema mismatch, query
  defects) propagates, because another copy of the same bytes cannot fix it;
- only when *every* replica fails the strict pass does the set fall back to
  the engine's configured :class:`~repro.resilience.DegradationPolicy` —
  degradation remains the last resort, after replication is exhausted.

Replica health states (see ``docs/robustness.md``): **healthy** (serving),
**suspect** (failed a load or fingerprint check; breaker counting),
**quarantined** (set aside under ``quarantine-*/`` by the scrubber),
**repaired** (rebuilt from a verified peer or from source — back to healthy).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, TypeVar

from repro.errors import (
    IndexCorruptError,
    IndexNotFoundError,
    IndexStaleError,
)
from repro.index.persist import load_manifest, load_replica_manifest
from repro.resilience.breaker import BreakerConfig, CircuitBreaker
from repro.resilience.warnings import REPLICA_FAILOVER, QueryWarning

T = TypeVar("T")

#: Failure classes replica failover absorbs: damage or unavailability local
#: to one copy.  Everything else propagates — a second copy of the same
#: bytes cannot fix a schema mismatch or a malformed query.
FAILOVER_ERRORS = (IndexCorruptError, IndexStaleError, IndexNotFoundError, OSError)

HEALTHY = "healthy"
SUSPECT = "suspect"
QUARANTINED = "quarantined"


@dataclass
class ReplicaLoadEvent:
    """One attempted replica load (feeds ``replica:{shard}:{i}`` trace spans)."""

    replica: str
    index: int
    ok: bool
    started_at: float
    ended_at: float
    error: str | None = None
    reason: str | None = None


@dataclass
class _Replica:
    index: int
    name: str
    directory: Path
    breaker: CircuitBreaker
    status: str = HEALTHY
    last_error: str | None = None


@dataclass
class ReplicaLoad:
    """What :meth:`ReplicaSet.load` produced: the loaded value, which
    replica served it, whether the degradation-policy fallback was needed,
    and the failover warnings/events accumulated along the way."""

    value: Any
    replica_index: int
    fallback: bool
    warnings: list[QueryWarning] = field(default_factory=list)
    events: list[ReplicaLoadEvent] = field(default_factory=list)


class ReplicaSet:
    """Breaker-aware read routing over one replicated shard directory."""

    def __init__(
        self,
        directory: str | Path,
        breaker_config: BreakerConfig | None = None,
        shard_name: str | None = None,
    ) -> None:
        self.directory = Path(directory)
        manifest = load_replica_manifest(self.directory)
        if manifest is None:
            raise ValueError(f"{self.directory} is not a replicated index")
        self.shard_name = shard_name if shard_name is not None else self.directory.name
        self.expected_fingerprint: str | None = manifest.get("corpus_fingerprint")
        self.manifest_damaged = bool(manifest.get("manifest_damaged", False))
        config = breaker_config if breaker_config is not None else BreakerConfig()
        self._replicas = [
            _Replica(
                index=i,
                name=entry["directory"],
                directory=self.directory / entry["directory"],
                breaker=CircuitBreaker(
                    config, name=f"{self.shard_name}:{entry['directory']}"
                ),
            )
            for i, entry in enumerate(manifest["replicas"])
        ]
        self._lock = threading.Lock()

    @classmethod
    def open(
        cls,
        directory: str | Path,
        breaker_config: BreakerConfig | None = None,
        shard_name: str | None = None,
    ) -> "ReplicaSet | None":
        """A replica set over ``directory``, or ``None`` when the directory
        does not use the replicated layout (plain single-index shard)."""
        try:
            if load_replica_manifest(directory) is None:
                return None
        except IndexCorruptError:
            return None
        return cls(directory, breaker_config=breaker_config, shard_name=shard_name)

    def __len__(self) -> int:
        return len(self._replicas)

    @property
    def replica_names(self) -> list[str]:
        return [replica.name for replica in self._replicas]

    def replica_directory(self, index: int) -> Path:
        return self._replicas[index].directory

    # -- routing ---------------------------------------------------------------

    def _rotation(self, offset: int) -> list[_Replica]:
        """Replicas in preference order, rotated by ``offset`` so a hedge
        attempt starts from a *different* copy than the primary it races."""
        n = len(self._replicas)
        shift = offset % n if n else 0
        return self._replicas[shift:] + self._replicas[:shift]

    def _fingerprint_ok(self, replica: _Replica) -> bool:
        """Whether the replica's own manifest matches the shard manifest's
        recorded fingerprint (``True`` when there is no expectation to
        check — a damaged shard manifest must not disqualify every copy)."""
        if self.expected_fingerprint is None:
            return True
        try:
            manifest = load_manifest(replica.directory)
        except IndexCorruptError:
            return False
        if manifest is None:
            return False  # replicas are always v2+: a missing manifest is damage
        return manifest.get("corpus_fingerprint") == self.expected_fingerprint

    def load(
        self,
        loader: Callable[[str], T],
        fallback: Callable[[str], T] | None = None,
        offset: int = 0,
    ) -> ReplicaLoad:
        """Route a load to the first healthy replica.

        ``loader`` is attempted against each candidate replica directory in
        rotated preference order; a candidate is skipped up front when its
        breaker is open or its fingerprint diverges from the shard
        manifest.  Typed corrupt/stale/missing errors and transient I/O
        fail over to the next replica (``replica-failover`` warning per
        skip).  When every replica fails the strict pass, ``fallback``
        (typically the same load under the engine's real degradation
        policy) is attempted per replica before the last error propagates.
        """
        warnings: list[QueryWarning] = []
        events: list[ReplicaLoadEvent] = []
        last_error: BaseException | None = None
        order = self._rotation(offset)
        for replica in order:
            if not replica.breaker.allow():
                snapshot = replica.breaker.snapshot()
                self._note_skip(
                    replica, "breaker-open", warnings, events,
                    extra={"breaker": snapshot["state"], "trips": snapshot["trips"]},
                )
                continue
            if not self._fingerprint_ok(replica):
                # Divergence is not a load fault: the copy is internally
                # consistent but does not match the committed state.  The
                # breaker is left alone — the scrubber repairs divergence,
                # and routing resumes the moment the fingerprint matches.
                with self._lock:
                    replica.status = SUSPECT
                    replica.last_error = "fingerprint-mismatch"
                self._note_skip(replica, "fingerprint-mismatch", warnings, events)
                continue
            started = perf_counter()
            try:
                value = loader(str(replica.directory))
            except FAILOVER_ERRORS as error:
                replica.breaker.record_failure()
                with self._lock:
                    replica.status = SUSPECT
                    replica.last_error = f"{type(error).__name__}: {error}"
                last_error = error
                events.append(
                    ReplicaLoadEvent(
                        replica=replica.name,
                        index=replica.index,
                        ok=False,
                        started_at=started,
                        ended_at=perf_counter(),
                        error=type(error).__name__,
                    )
                )
                warnings.append(self._failover_warning(replica, error))
                continue
            replica.breaker.record_success()
            with self._lock:
                replica.status = HEALTHY
                replica.last_error = None
            events.append(
                ReplicaLoadEvent(
                    replica=replica.name,
                    index=replica.index,
                    ok=True,
                    started_at=started,
                    ended_at=perf_counter(),
                )
            )
            return ReplicaLoad(
                value=value,
                replica_index=replica.index,
                fallback=False,
                warnings=warnings,
                events=events,
            )
        if fallback is not None:
            for replica in order:
                started = perf_counter()
                try:
                    value = fallback(str(replica.directory))
                except FAILOVER_ERRORS as error:
                    last_error = error
                    events.append(
                        ReplicaLoadEvent(
                            replica=replica.name,
                            index=replica.index,
                            ok=False,
                            started_at=started,
                            ended_at=perf_counter(),
                            error=type(error).__name__,
                            reason="fallback",
                        )
                    )
                    continue
                events.append(
                    ReplicaLoadEvent(
                        replica=replica.name,
                        index=replica.index,
                        ok=True,
                        started_at=started,
                        ended_at=perf_counter(),
                        reason="fallback",
                    )
                )
                return ReplicaLoad(
                    value=value,
                    replica_index=replica.index,
                    fallback=True,
                    warnings=warnings,
                    events=events,
                )
        if last_error is None:
            last_error = IndexNotFoundError(
                str(self.directory), "no replica could be routed to"
            )
        raise last_error

    def _note_skip(
        self,
        replica: _Replica,
        reason: str,
        warnings: list[QueryWarning],
        events: list[ReplicaLoadEvent],
        extra: dict | None = None,
    ) -> None:
        now = perf_counter()
        events.append(
            ReplicaLoadEvent(
                replica=replica.name,
                index=replica.index,
                ok=False,
                started_at=now,
                ended_at=now,
                reason=reason,
            )
        )
        warnings.append(
            QueryWarning(
                REPLICA_FAILOVER,
                f"replica {replica.name!r} of shard {self.shard_name!r} "
                f"skipped ({reason}); failing over",
                detail={
                    "shard": self.shard_name,
                    "replica": replica.name,
                    "replica_index": replica.index,
                    "reason": reason,
                    **(extra or {}),
                },
            )
        )

    def _failover_warning(
        self, replica: _Replica, error: BaseException
    ) -> QueryWarning:
        return QueryWarning(
            REPLICA_FAILOVER,
            f"replica {replica.name!r} of shard {self.shard_name!r} failed "
            f"({type(error).__name__}: {error}); failing over",
            detail={
                "shard": self.shard_name,
                "replica": replica.name,
                "replica_index": replica.index,
                "reason": type(error).__name__,
            },
        )

    # -- health ----------------------------------------------------------------

    def record_repaired(self, index: int) -> None:
        """Reset one replica's routing state after an external repair (the
        scrubber rebuilt it): breaker re-closed, status back to healthy."""
        replica = self._replicas[index]
        replica.breaker = CircuitBreaker(
            replica.breaker.config, name=f"{self.shard_name}:{replica.name}"
        )
        with self._lock:
            replica.status = HEALTHY
            replica.last_error = None

    def health(self) -> dict[str, Any]:
        """Per-replica health for ``stats()`` and ``GET /healthz``."""
        detail = []
        healthy = 0
        with self._lock:
            statuses = [(r.status, r.last_error) for r in self._replicas]
        for replica, (status, last_error) in zip(self._replicas, statuses):
            if not replica.directory.is_dir():
                status = QUARANTINED  # set aside (or lost); not routable
            snapshot = replica.breaker.snapshot()
            if status == HEALTHY and snapshot["state"] != "open":
                healthy += 1
            detail.append(
                {
                    "replica": replica.name,
                    "status": status,
                    "breaker": snapshot["state"],
                    "last_error": last_error,
                }
            )
        return {
            "shard": self.shard_name,
            "replicas": len(self._replicas),
            "healthy": healthy,
            "detail": detail,
        }
