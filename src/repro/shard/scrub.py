"""Background scrub and anti-entropy repair for replicated shard indexes.

:func:`scrub_index` walks a sharded index root and verifies every replica
of every shard against two independent expectations:

1. **self-integrity** — the replica's own manifest CRC32s must match its
   files (:func:`repro.index.persist.verify_index`), and its corpus bytes
   must hash to the fingerprint its own manifest records;
2. **agreement** — the replica's corpus fingerprint must match the shard
   manifest's recorded fingerprint.  A copy that is internally consistent
   but *diverged* (a crash between compaction fan-out and the shard
   manifest rewrite) is damage too: it would answer from uncommitted state.

With ``repair=True`` each damaged replica is healed by the anti-entropy
protocol, every step reusing the crash-safe persistence primitives:

- **quarantine** — the damaged directory is renamed to
  ``quarantine-{ts}-{replica}/`` inside the shard directory.  Quarantined
  copies are *never deleted* by the scrubber: they are forensic evidence,
  and renaming is the only destructive-looking step in the protocol, so a
  crash can at worst leave an extra quarantine directory behind.
- **copy from a verified peer** — a healthy sibling replica is copied into
  a ``.{replica}.saving-{pid}`` staging sibling and renamed into the empty
  slot (the same staging-sibling + rename pattern as every index save);
- **rebuild from source** — when *no* healthy peer survives but the shard
  records a source file whose current content still matches the expected
  fingerprint, the replica is rebuilt by re-indexing that source;
- otherwise the replica is reported **unrepairable** (the quarantined copy
  still exists for manual recovery).

A shard manifest damaged or left behind by a crash is itself repairable:
when every verifying replica agrees on one fingerprint, the manifest is
rewritten to match them (the replicas *are* the committed state — each was
fsynced and renamed into place before the manifest rewrite began).

:class:`ScrubDaemon` runs the same scrub on a jittered interval from a
daemon thread — the server-owned self-healing loop behind
``repro serve --scrub-interval-s``.
"""

from __future__ import annotations

import os
import random
import shutil
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from repro.errors import IndexCorruptError, IndexNotFoundError
from repro.index.persist import (
    QUARANTINE_PREFIX,
    corpus_fingerprint,
    load_manifest,
    load_replica_manifest,
    save_replica_manifest,
    sweep_stale_staging,
    verify_index,
)
from repro.resilience.warnings import (
    REPLICA_QUARANTINED,
    REPLICA_REPAIRED,
    QueryWarning,
)
from repro.shard.manifest import load_shard_manifest

#: Optional crash hook (tests/chaos): called with a named point before the
#: scrub proceeds past it.  Points: ``scrub:quarantined`` (damaged replica
#: renamed aside), ``scrub:peer-copied`` (staging copy complete, not yet
#: promoted), ``scrub:repaired`` (replacement renamed into place).
CrashHook = Callable[[str], None]

CORRUPT = "corrupt"
DIVERGED = "diverged"
MISSING = "missing"
MANIFEST_DAMAGED = "manifest-damaged"

QUARANTINE_ACTION = "quarantined"
COPIED_FROM_PEER = "copied-from-peer"
REBUILT_FROM_SOURCE = "rebuilt-from-source"
MANIFEST_REWRITTEN = "manifest-rewritten"
UNREPAIRABLE = "unrepairable"


@dataclass
class ScrubFinding:
    """One damaged replica (or shard manifest) the scrub detected."""

    shard: str
    replica: str | None
    kind: str
    detail: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "shard": self.shard,
            "replica": self.replica,
            "kind": self.kind,
            "detail": self.detail,
        }


@dataclass
class ScrubRepair:
    """One repair action the scrub took (or could not take)."""

    shard: str
    replica: str | None
    action: str
    detail: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "shard": self.shard,
            "replica": self.replica,
            "action": self.action,
            "detail": self.detail,
        }


@dataclass
class ScrubReport:
    """What one scrub pass found and did."""

    shards_checked: int = 0
    replicas_checked: int = 0
    findings: list[ScrubFinding] = field(default_factory=list)
    repairs: list[ScrubRepair] = field(default_factory=list)
    warnings: list[QueryWarning] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def unrepaired(self) -> list[ScrubRepair]:
        return [repair for repair in self.repairs if repair.action == UNREPAIRABLE]

    def to_dict(self) -> dict[str, Any]:
        return {
            "shards_checked": self.shards_checked,
            "replicas_checked": self.replicas_checked,
            "clean": self.clean,
            "findings": [finding.to_dict() for finding in self.findings],
            "repairs": [repair.to_dict() for repair in self.repairs],
            "warnings": [warning.to_dict() for warning in self.warnings],
        }


def _replica_problem(directory: Path, expected: str | None) -> tuple[str, str] | None:
    """Why this replica directory is damaged, or ``None`` when it is clean."""
    if not directory.is_dir():
        return MISSING, f"replica directory {directory.name!r} does not exist"
    try:
        verify_index(directory)
    except (IndexNotFoundError, IndexCorruptError) as error:
        return CORRUPT, str(error)
    try:
        own = load_manifest(directory)
    except IndexCorruptError as error:
        return CORRUPT, str(error)
    if own is None:
        return CORRUPT, "replica has no manifest (replicas are always v2+)"
    recorded = own.get("corpus_fingerprint")
    try:
        actual = corpus_fingerprint(
            (directory / "corpus.txt").read_text(encoding="utf-8")
        )
    except OSError as error:
        return CORRUPT, f"corpus unreadable: {error}"
    if recorded != actual:
        return CORRUPT, (
            f"corpus bytes hash to {actual} but the replica manifest "
            f"records {recorded}"
        )
    if expected is not None and actual != expected:
        return DIVERGED, (
            f"replica carries {actual} but the shard manifest committed "
            f"{expected}"
        )
    return None


def _quarantine_name(shard_dir: Path, replica_name: str, clock: Callable[[], float]) -> Path:
    stamp = int(clock())
    candidate = shard_dir / f"{QUARANTINE_PREFIX}{stamp}-{replica_name}"
    bump = 0
    while candidate.exists():
        bump += 1
        candidate = shard_dir / f"{QUARANTINE_PREFIX}{stamp}-{bump}-{replica_name}"
    return candidate


def scrub_index(
    schema,
    directory: str | os.PathLike[str],
    repair: bool = False,
    crash_hook: CrashHook | None = None,
    clock: Callable[[], float] = time.time,
) -> ScrubReport:
    """Verify (and with ``repair=True``, heal) every replica of every shard
    under a sharded index root.  See the module docstring for the
    verification rules and the anti-entropy repair protocol."""
    root = Path(directory)
    manifest = load_shard_manifest(root)
    report = ScrubReport()
    for entry in manifest.shards:
        shard_dir = root / entry.directory
        report.shards_checked += 1
        replica_manifest = load_replica_manifest(shard_dir)
        if replica_manifest is None:
            # Plain single-copy shard: verify in place; there is no peer to
            # repair from, so damage is reported, not healed.
            report.replicas_checked += 1
            problem = _replica_problem(shard_dir, entry.corpus_fingerprint)
            if problem is not None:
                kind, detail = problem
                report.findings.append(
                    ScrubFinding(shard=entry.name, replica=None, kind=kind, detail=detail)
                )
            continue
        expected = replica_manifest.get("corpus_fingerprint") or entry.corpus_fingerprint
        manifest_damaged = bool(replica_manifest.get("manifest_damaged"))
        names = [item["directory"] for item in replica_manifest["replicas"]]
        problems: dict[str, tuple[str, str]] = {}
        for name in names:
            report.replicas_checked += 1
            problem = _replica_problem(shard_dir / name, expected)
            if problem is not None:
                problems[name] = problem
                report.findings.append(
                    ScrubFinding(
                        shard=entry.name, replica=name,
                        kind=problem[0], detail=problem[1],
                    )
                )
        healthy = [name for name in names if name not in problems]
        if manifest_damaged:
            report.findings.append(
                ScrubFinding(
                    shard=entry.name,
                    replica=None,
                    kind=MANIFEST_DAMAGED,
                    detail="shard manifest missing or unreadable",
                )
            )
        if not repair:
            continue
        if not healthy and problems:
            # No replica matches the committed fingerprint.  If the
            # self-consistent survivors all agree on one *other*
            # fingerprint, the manifest rewrite is what the crash
            # interrupted (every replica was folded and fsynced before the
            # commit point): finish it rather than quarantining the world.
            agreeing: dict[str | None, list[str]] = {}
            for name, (kind, _detail) in problems.items():
                if kind != DIVERGED:
                    continue
                own = load_manifest(shard_dir / name)
                agreeing.setdefault(own.get("corpus_fingerprint"), []).append(name)
            if len(agreeing) == 1:
                agreed, agreed_names = next(iter(agreeing.items()))
                if agreed is not None:
                    live = None
                    for name in agreed_names:
                        state = load_manifest(shard_dir / name).get("live")
                        if isinstance(state, dict):
                            live = dict(state)
                            break
                    save_replica_manifest(
                        shard_dir, agreed, names, source=entry.source, live=live
                    )
                    expected = agreed
                    healthy = list(agreed_names)
                    for name in agreed_names:
                        del problems[name]
                    report.repairs.append(
                        ScrubRepair(
                            shard=entry.name,
                            replica=None,
                            action=MANIFEST_REWRITTEN,
                            detail=(
                                f"promoted {agreed} agreed by "
                                f"{len(agreed_names)} intact replica(s) "
                                "(interrupted commit finished)"
                            ),
                        )
                    )
        if manifest_damaged and healthy:
            # The replicas are the committed state; rewrite the shard
            # manifest to match them when the survivors agree.
            fingerprints = {
                load_manifest(shard_dir / name).get("corpus_fingerprint")
                for name in healthy
            }
            if len(fingerprints) == 1:
                agreed = fingerprints.pop()
                live = None
                for name in healthy:
                    state = load_manifest(shard_dir / name).get("live")
                    if isinstance(state, dict):
                        live = dict(state)
                        break
                save_replica_manifest(
                    shard_dir, agreed, names, source=entry.source, live=live
                )
                expected = agreed
                report.repairs.append(
                    ScrubRepair(
                        shard=entry.name,
                        replica=None,
                        action=MANIFEST_REWRITTEN,
                        detail=f"rewritten from {len(healthy)} agreeing replica(s)",
                    )
                )
        for name, (kind, detail) in problems.items():
            _repair_replica(
                schema,
                entry,
                shard_dir,
                name,
                kind,
                healthy,
                expected,
                report,
                crash_hook,
                clock,
            )
    return report


def _repair_replica(
    schema,
    entry,
    shard_dir: Path,
    name: str,
    kind: str,
    healthy: list[str],
    expected: str | None,
    report: ScrubReport,
    crash_hook: CrashHook | None,
    clock: Callable[[], float],
) -> None:
    """Quarantine one damaged replica and rebuild it from the best source.

    The repair path is chosen *before* anything is renamed: a replica with
    no healthy peer and no matching source is left exactly where it is
    (reported :data:`UNREPAIRABLE`) — the scrub never reduces what
    survives on disk.
    """
    replica_dir = shard_dir / name
    source = entry.source or {}
    source_path = source.get("path")
    source_text: str | None = None
    if not healthy and source_path and Path(source_path).exists():
        try:
            text = Path(source_path).read_text(encoding="utf-8")
        except OSError:
            source_text = None
        else:
            if expected is None or corpus_fingerprint(text) == expected:
                source_text = text
    if not healthy and source_text is None:
        detail = "no healthy peer and no source file to rebuild from"
        if source_path and Path(source_path).exists():
            detail = (
                "no healthy peer, and the source file no longer matches the "
                "committed fingerprint (rebuilding would change answers)"
            )
        report.repairs.append(
            ScrubRepair(
                shard=entry.name, replica=name, action=UNREPAIRABLE, detail=detail
            )
        )
        return
    if replica_dir.exists():
        quarantine = _quarantine_name(shard_dir, name, clock)
        os.rename(replica_dir, quarantine)
        report.repairs.append(
            ScrubRepair(
                shard=entry.name,
                replica=name,
                action=QUARANTINE_ACTION,
                detail=f"moved to {quarantine.name} ({kind})",
            )
        )
        report.warnings.append(
            QueryWarning(
                REPLICA_QUARANTINED,
                f"replica {name!r} of shard {entry.name!r} quarantined "
                f"({kind}) to {quarantine.name!r}",
                detail={
                    "shard": entry.name,
                    "replica": name,
                    "kind": kind,
                    "quarantine": quarantine.name,
                },
            )
        )
        if crash_hook is not None:
            crash_hook("scrub:quarantined")
    # Clear any staging orphan a previously crashed repair left behind.
    sweep_stale_staging(replica_dir)
    if healthy:
        peer = shard_dir / healthy[0]
        staging = shard_dir / f".{name}.saving-{os.getpid()}"
        if staging.exists():
            shutil.rmtree(staging)
        shutil.copytree(peer, staging)
        if crash_hook is not None:
            crash_hook("scrub:peer-copied")
        os.rename(staging, replica_dir)
        if crash_hook is not None:
            crash_hook("scrub:repaired")
        _record_repaired(
            report, entry.name, name, COPIED_FROM_PEER,
            f"copied from verified peer {healthy[0]!r}",
        )
        return
    from repro.core.engine import FileQueryEngine

    FileQueryEngine(schema, source_text).save(str(replica_dir), source_path=source_path)
    if crash_hook is not None:
        crash_hook("scrub:repaired")
    _record_repaired(
        report, entry.name, name, REBUILT_FROM_SOURCE,
        f"re-indexed {source_path!r}",
    )


def _record_repaired(
    report: ScrubReport, shard: str, replica: str, action: str, detail: str
) -> None:
    report.repairs.append(
        ScrubRepair(shard=shard, replica=replica, action=action, detail=detail)
    )
    report.warnings.append(
        QueryWarning(
            REPLICA_REPAIRED,
            f"replica {replica!r} of shard {shard!r} repaired ({detail})",
            detail={"shard": shard, "replica": replica, "action": action},
        )
    )


class ScrubDaemon:
    """A server-owned scrub loop: run ``runner`` every ``interval_s``
    seconds with +/- ``jitter_fraction`` random jitter (so a fleet of
    servers over shared storage does not scrub in lockstep), from a daemon
    thread.  Exceptions are recorded, never raised — a scrub failure must
    not take the server down."""

    def __init__(
        self,
        runner: Callable[[], ScrubReport],
        interval_s: float,
        jitter_fraction: float = 0.1,
        rng: random.Random | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s!r}")
        if not 0 <= jitter_fraction < 1:
            raise ValueError(
                f"jitter_fraction must be in [0, 1), got {jitter_fraction!r}"
            )
        self.runner = runner
        self.interval_s = interval_s
        self.jitter_fraction = jitter_fraction
        self._rng = rng if rng is not None else random.Random()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._runs = 0
        self._last_report: ScrubReport | None = None
        self._last_error: str | None = None

    def _delay(self) -> float:
        spread = self.interval_s * self.jitter_fraction
        return max(0.0, self.interval_s + self._rng.uniform(-spread, spread))

    def _loop(self) -> None:
        while not self._stop.wait(self._delay()):
            self.run_once()

    def run_once(self) -> ScrubReport | None:
        """One scrub pass, immediately (also what the loop calls)."""
        try:
            report = self.runner()
        except Exception as error:  # noqa: BLE001 — isolation boundary
            with self._lock:
                self._runs += 1
                self._last_error = f"{type(error).__name__}: {error}"
            return None
        with self._lock:
            self._runs += 1
            self._last_report = report
            self._last_error = None
        return report

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="repro-scrub", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float | None = 5.0) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=timeout)
        self._thread = None

    def snapshot(self) -> dict[str, Any]:
        """A JSON-ready view for ``/stats``."""
        with self._lock:
            last = self._last_report
            return {
                "interval_s": self.interval_s,
                "runs": self._runs,
                "last_error": self._last_error,
                "last_clean": last.clean if last is not None else None,
                "last_findings": len(last.findings) if last is not None else None,
                "last_repairs": len(last.repairs) if last is not None else None,
            }
