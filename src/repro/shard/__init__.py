"""Sharded corpus execution with per-shard fault isolation.

One structuring schema, N corpus files, one
:class:`~repro.core.engine.FileQueryEngine` and persisted index per
shard.  :class:`ShardedEngine` plans each query once and scatter-gathers
it over a bounded thread pool; every shard evaluates under the existing
budget/degradation machinery, wrapped in retry-with-backoff
(:mod:`repro.resilience.retry`) and a per-shard circuit breaker
(:mod:`repro.resilience.breaker`).  Unhealthy shards degrade into
structured warnings on a partial result — or, under ``fail_fast``, into
a typed :class:`~repro.errors.ShardFailedError`.

Layout on disk (see :mod:`repro.shard.manifest`)::

    <root>/manifest.json           kind="sharded" + per-shard fingerprints
    <root>/shards/<nnn>-<name>/    one crash-safe v2 index per shard

With replication (``save(..., replicas=N)``, :mod:`repro.shard.replica`)
each shard directory holds N complete sibling copies under
``replica-{i}/`` plus a ``kind="replicated"`` shard-level manifest; reads
route across the copies with per-replica circuit breakers, and the
scrubber (:mod:`repro.shard.scrub`) quarantines and repairs damaged
copies in the background.
"""

from repro.shard.engine import (
    DEFAULT_MAX_PARALLEL,
    ShardedEngine,
    ShardedQueryResult,
)
from repro.shard.manifest import (
    ShardEntry,
    ShardManifest,
    is_sharded_index,
    load_shard_manifest,
    save_shard_manifest,
    shard_slug,
)
from repro.shard.replica import ReplicaLoad, ReplicaLoadEvent, ReplicaSet
from repro.shard.scrub import (
    ScrubDaemon,
    ScrubFinding,
    ScrubRepair,
    ScrubReport,
    scrub_index,
)
from repro.shard.split import split_corpus
from repro.shard.stats import FAILED, OK, SKIPPED, ShardedStats, ShardExecution

__all__ = [
    "DEFAULT_MAX_PARALLEL",
    "FAILED",
    "OK",
    "SKIPPED",
    "ReplicaLoad",
    "ReplicaLoadEvent",
    "ReplicaSet",
    "ScrubDaemon",
    "ScrubFinding",
    "ScrubRepair",
    "ScrubReport",
    "ShardEntry",
    "ShardExecution",
    "ShardManifest",
    "ShardedEngine",
    "ShardedQueryResult",
    "ShardedStats",
    "is_sharded_index",
    "load_shard_manifest",
    "save_shard_manifest",
    "scrub_index",
    "shard_slug",
    "split_corpus",
]
