"""Scatter-gather query execution over a sharded corpus.

One :class:`ShardedEngine` maps a single structuring schema over N corpus
files, each backed by its own :class:`~repro.core.engine.FileQueryEngine`
and persisted index.  A query is planned **once** (translation and
optimization depend only on the schema and index configuration, which all
shards share) and the plan is executed per shard on a bounded thread
pool.  Each shard evaluates independently under the existing
budget/degradation machinery, with three extra layers of isolation:

- transient I/O failures are retried with capped jittered exponential
  backoff (:mod:`repro.resilience.retry`);
- a shard that keeps failing trips its own circuit breaker
  (:mod:`repro.resilience.breaker`) and is skipped — cheaply — until the
  cooldown elapses;
- a failed or skipped shard never takes the query down (unless
  ``fail_fast`` asks for exactly that): the merged result carries rows
  from the healthy shards plus structured ``shard-failed`` /
  ``shard-retried`` / ``shard-skipped-open-breaker`` / ``partial-result``
  warnings.

``fail_fast`` mode flips partial-result semantics into a typed
:class:`~repro.errors.ShardFailedError` for the first unhealthy shard.
A query that no shard can answer raises even in tolerant mode — an empty
"partial" result backed by zero shards would be indistinguishable from a
true empty answer.
"""

from __future__ import annotations

import os
import random
import threading
import time
import warnings as _warnings
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from dataclasses import replace as dataclass_replace
from pathlib import Path
from time import perf_counter
from typing import Any, Callable, Sequence

from repro.api import (
    AnalyzeResponse,
    ExplainResponse,
    QueryRequest,
    QueryResponse,
    StatsResponse,
    query_response,
)
from repro.cache import CacheConfig
from repro.core.engine import FileQueryEngine, QueryResult
from repro.core.planner import Plan
from repro.db.parser import parse_query
from repro.db.query import Query
from repro.db.values import Value, canonical
from repro.errors import QueryError, ShardFailedError
from repro.feedback import HISTORY_FILENAME, FeedbackConfig, FeedbackHistory
from repro.index.config import IndexConfig
from repro.obs.analyze import Analysis, build_node_table
from repro.obs.trace import Span, Trace
from repro.resilience.breaker import BreakerConfig, CircuitBreaker
from repro.resilience.budget import ResourceBudget
from repro.resilience.policy import DegradationPolicy
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.resilience.warnings import (
    PARTIAL_RESULT,
    SHARD_FAILED,
    SHARD_HEDGED,
    SHARD_RETRIED,
    SHARD_SKIPPED_OPEN_BREAKER,
    SHARD_TIMEOUT,
    QueryWarning,
)
from repro.schema.structuring import StructuringSchema
from repro.shard.manifest import (
    SHARDS_SUBDIR,
    ShardEntry,
    ShardManifest,
    load_shard_manifest,
    save_shard_manifest,
    shard_slug,
)
from repro.shard.replica import ReplicaSet
from repro.shard.split import split_corpus
from repro.shard.stats import FAILED, OK, SKIPPED, ShardedStats, ShardExecution

#: Default ceiling on concurrently evaluating shards.
DEFAULT_MAX_PARALLEL = 8

#: A fault injector receives the shard name at the start of every attempt
#: (see :class:`~repro.resilience.faults.TransientIOFault`).  An injector
#: may also expose ``release()``: the engine calls it when it abandons a
#: hung attempt so the injected hang can wake up and fail fast (see
#: :class:`~repro.resilience.faults.HungShard`).
FaultInjector = Callable[[str], None]

#: How long past an absolute request deadline the gather loop waits for
#: per-shard budget meters to fire on their own before abandoning the
#: stragglers outright: ``fraction * deadline_s`` clamped to the bounds.
#: Keeps the worst case comfortably under 2x the deadline while giving a
#: healthy-but-late shard time to report its own BudgetExceededError.
GATHER_GRACE_FRACTION = 0.25
GATHER_GRACE_MIN_S = 0.02
GATHER_GRACE_MAX_S = 1.0


@dataclass
class _Shard:
    """One shard's mutable state: identity, lazily built engine, breaker,
    and — for replicated shard directories — the replica routing state."""

    name: str
    text: str | None = None
    directory: Path | None = None
    source_path: Path | None = None
    engine: FileQueryEngine | None = None
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)
    lock: threading.Lock = field(default_factory=threading.Lock)
    replica_set: "ReplicaSet | None" = None
    replica_checked: bool = False
    replica_events: list = field(default_factory=list)


@dataclass
class _Outcome:
    """What one scatter task reported back for one shard."""

    shard: str
    status: str
    result: QueryResult | None = None
    error: BaseException | None = None
    attempts: int = 0
    retries: int = 0
    started_at: float = 0.0
    ended_at: float = 0.0
    warnings: list[QueryWarning] = field(default_factory=list)
    breaker: dict[str, Any] = field(default_factory=dict)
    hedged: bool = False
    winner: str | None = None


@dataclass
class _ShardTask:
    """One shard's in-flight scatter state: the primary attempt and, when
    hedging kicked in, its racing duplicate."""

    number: int
    shard: _Shard
    primary: "Future[_Outcome]"
    dispatched_at: float
    hedge: "Future[_Outcome] | None" = None
    hedged_at: float | None = None

    def futures(self) -> list["Future[_Outcome]"]:
        return [self.primary] if self.hedge is None else [self.primary, self.hedge]


@dataclass
class ShardedQueryResult:
    """The merged answer: rows from every healthy shard (in shard order),
    the shared plan, per-shard results, and the consolidated
    :class:`~repro.shard.stats.ShardedStats`."""

    rows: list[tuple[Value, ...]]
    plan: Plan | None
    stats: ShardedStats
    shard_results: dict[str, QueryResult]
    trace: Trace | None = None

    @property
    def warnings(self) -> list[QueryWarning]:
        return self.stats.warnings

    @property
    def values(self) -> list[Value]:
        return [row[0] for row in self.rows]

    def canonical_rows(self) -> set[tuple]:
        return {tuple(canonical(value) for value in row) for row in self.rows}

    def __len__(self) -> int:
        return len(self.rows)


class ShardedEngine:
    """Query a corpus of many files through one schema, one shard each.

    Construction is via the classmethods: :meth:`from_texts` /
    :meth:`from_paths` build shard engines eagerly (the expensive
    per-shard parse happens once, up front); :meth:`from_saved` reads a
    shard manifest and loads each shard lazily, *inside* its scatter task,
    so a damaged shard directory surfaces as that shard's isolated
    failure — never as a load-time crash of the whole corpus.
    """

    def __init__(
        self,
        schema: StructuringSchema,
        shards: Sequence[_Shard],
        *,
        config: IndexConfig | None = None,
        cache_config: CacheConfig | None = None,
        optimize_expressions: bool = True,
        tracing: bool = True,
        policy: DegradationPolicy | None = None,
        budget: ResourceBudget | None = None,
        retry: RetryPolicy | None = None,
        breaker_config: BreakerConfig | None = None,
        max_parallel: int | None = None,
        fail_fast: bool = False,
        hedge_after_s: float | None = None,
        fault_injector: FaultInjector | None = None,
        retry_sleep: Callable[[float], Any] = time.sleep,
        feedback: "FeedbackConfig | bool | None" = None,
        feedback_history: "FeedbackHistory | None" = None,
    ) -> None:
        if not shards:
            raise ValueError("a sharded engine needs at least one shard")
        names = [shard.name for shard in shards]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard names: {sorted(names)}")
        self.schema = schema
        self.config = config if config is not None else IndexConfig.full()
        self.cache_config = cache_config
        self.optimize_expressions = optimize_expressions
        self.tracing = tracing
        self.policy = policy if policy is not None else DegradationPolicy()
        self.budget = budget
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker_config = (
            breaker_config if breaker_config is not None else BreakerConfig()
        )
        self.max_parallel = (
            max_parallel if max_parallel is not None else DEFAULT_MAX_PARALLEL
        )
        if self.max_parallel < 1:
            raise ValueError(f"max_parallel must be >= 1, got {self.max_parallel!r}")
        self.fail_fast = fail_fast
        if hedge_after_s is not None and hedge_after_s < 0:
            raise ValueError(f"hedge_after_s must be non-negative, got {hedge_after_s!r}")
        self.hedge_after_s = hedge_after_s
        self.fault_injector = fault_injector
        self._retry_sleep = retry_sleep
        # One shared history across all shards: keys carry each shard's own
        # corpus fingerprint, so per-shard calibration is automatic while
        # persistence stays a single root-level feedback.json.
        self.feedback_config = FeedbackConfig.coerce(feedback)
        if feedback_history is not None:
            self.feedback_history = feedback_history
        elif self.feedback_config.enabled and self.feedback_config.directory:
            self.feedback_history = FeedbackHistory.load_or_fresh(
                Path(self.feedback_config.directory) / HISTORY_FILENAME
            )
        else:
            self.feedback_history = FeedbackHistory()
        self._shards = list(shards)
        for shard in self._shards:
            shard.breaker = CircuitBreaker(self.breaker_config, name=shard.name)

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_texts(
        cls,
        schema: StructuringSchema,
        texts: Sequence[str],
        names: Sequence[str] | None = None,
        **options: Any,
    ) -> "ShardedEngine":
        """One shard per text, built eagerly (names default to ``shard0``,
        ``shard1``, ...)."""
        if names is None:
            names = [f"shard{number}" for number in range(len(texts))]
        if len(names) != len(texts):
            raise ValueError("names and texts must have equal length")
        shards = [
            _Shard(name=name, text=text) for name, text in zip(names, texts)
        ]
        engine = cls(schema, shards, **options)
        for shard in engine._shards:
            engine._ensure_engine(shard)
        return engine

    @classmethod
    def from_paths(
        cls,
        schema: StructuringSchema,
        paths: Sequence[str | os.PathLike[str]],
        **options: Any,
    ) -> "ShardedEngine":
        """One shard per file, built eagerly; each shard remembers its
        source path for staleness checks after :meth:`save`."""
        shards = []
        for path in paths:
            path = Path(path)
            shards.append(
                _Shard(
                    name=str(path),
                    text=path.read_text(encoding="utf-8"),
                    source_path=path,
                )
            )
        engine = cls(schema, shards, **options)
        for shard in engine._shards:
            engine._ensure_engine(shard)
        return engine

    @classmethod
    def split(
        cls,
        schema: StructuringSchema,
        text: str,
        shards: int,
        **options: Any,
    ) -> "ShardedEngine":
        """Shard a single corpus text into ``shards`` byte-balanced chunks
        at top-level record boundaries (see :mod:`repro.shard.split`)."""
        return cls.from_texts(schema, split_corpus(schema, text, shards), **options)

    @classmethod
    def from_saved(
        cls,
        schema: StructuringSchema,
        directory: str | os.PathLike[str],
        **options: Any,
    ) -> "ShardedEngine":
        """Open a saved sharded index (see :meth:`save`).

        Only the root manifest is read here.  Shard indexes load lazily
        inside their scatter tasks under the retry/breaker machinery, so a
        corrupt or missing shard costs exactly one shard, not the corpus.
        """
        root = Path(directory)
        options = dict(options)
        feedback = FeedbackConfig.coerce(options.get("feedback"))
        if feedback.enabled and feedback.directory is None:
            # Default the calibration home to the index root, so history
            # saved by `save()` is picked up transparently on reopen.
            options["feedback"] = dataclass_replace(feedback, directory=str(root))
        manifest = load_shard_manifest(root)
        shards = []
        for entry in manifest.shards:
            source_path: Path | None = None
            if entry.source and entry.source.get("path"):
                candidate = Path(entry.source["path"])
                # Only wire the staleness check to sources that still exist;
                # a vanished source file must not fail an intact shard.
                if candidate.exists():
                    source_path = candidate
            shards.append(
                _Shard(
                    name=entry.name,
                    directory=root / entry.directory,
                    source_path=source_path,
                )
            )
        return cls(schema, shards, **options)

    def save(
        self, directory: str | os.PathLike[str], replicas: int | None = None
    ) -> None:
        """Persist every shard (each a crash-safe v2 single-index save)
        plus the root shard manifest with per-shard fingerprints.

        ``replicas=N`` saves each shard in the replicated layout — N
        complete sibling copies under ``replica-{i}/`` per shard directory
        (see :mod:`repro.shard.replica`).

        The root manifest is written last: it is the commit point, and it
        only ever lists shards whose directories are already complete.
        """
        from repro.index.persist import corpus_fingerprint, schema_fingerprint

        root = Path(directory)
        (root / SHARDS_SUBDIR).mkdir(parents=True, exist_ok=True)
        entries = []
        for number, shard in enumerate(self._shards):
            engine = self._ensure_engine(shard)
            relative = f"{SHARDS_SUBDIR}/{shard_slug(shard.name, number)}"
            engine.save(
                str(root / relative),
                source_path=shard.source_path,
                replicas=replicas,
            )
            source: dict[str, Any] | None = None
            if shard.source_path is not None:
                source = {"path": str(shard.source_path)}
                try:
                    stat = os.stat(shard.source_path)
                    source["mtime"] = stat.st_mtime
                    source["size"] = stat.st_size
                except OSError:
                    pass
            entries.append(
                ShardEntry(
                    name=shard.name,
                    directory=relative,
                    corpus_fingerprint=corpus_fingerprint(engine.text),
                    source=source,
                )
            )
        save_shard_manifest(
            root,
            ShardManifest(
                shards=tuple(entries),
                schema_fingerprint=schema_fingerprint(self.schema),
            ),
        )
        if self.feedback_config.enabled and len(self.feedback_history):
            self.feedback_history.save(root / HISTORY_FILENAME)

    # -- shard plumbing --------------------------------------------------------

    @property
    def shard_names(self) -> list[str]:
        return [shard.name for shard in self._shards]

    def breaker_snapshot(self, shard_name: str) -> dict[str, Any]:
        """The named shard's circuit-breaker state (for harnesses/tests)."""
        return self._shard_by_name(shard_name).breaker.snapshot()

    def _shard_by_name(self, name: str) -> _Shard:
        for shard in self._shards:
            if shard.name == name:
                return shard
        raise KeyError(f"no shard named {name!r}")

    def _replica_set(self, shard: _Shard) -> "ReplicaSet | None":
        """The shard's replica routing state (``None`` for text shards and
        plain single-index directories).  Detected once, lock-protected."""
        with shard.lock:
            if not shard.replica_checked:
                shard.replica_checked = True
                if shard.directory is not None:
                    shard.replica_set = ReplicaSet.open(
                        shard.directory,
                        breaker_config=self.breaker_config,
                        shard_name=shard.name,
                    )
            return shard.replica_set

    def _ensure_engine(self, shard: _Shard, attempt_offset: int = 0) -> FileQueryEngine:
        """Build or load the shard's engine (idempotent).

        The load itself runs *outside* the shard lock — only the publish is
        locked — so a hedge attempt can race the primary onto a different
        replica instead of queueing behind a stuck load.  Failures leave
        ``shard.engine`` unset so the next attempt — this query's retry, or
        the next query — starts clean.
        """
        with shard.lock:
            if shard.engine is not None:
                return shard.engine
        engine = self._load_shard_engine(shard, attempt_offset)
        with shard.lock:
            if shard.engine is None:
                shard.engine = engine
            return shard.engine

    def _load_shard_engine(
        self, shard: _Shard, attempt_offset: int = 0
    ) -> FileQueryEngine:
        if shard.directory is None:
            return FileQueryEngine(
                self.schema,
                shard.text or "",
                self.config,
                optimize_expressions=self.optimize_expressions,
                cache_config=self.cache_config,
                tracing=self.tracing,
                policy=self.policy,
                budget=self.budget,
                feedback=self.feedback_config,
                feedback_history=self.feedback_history,
            )
        replica_set = self._replica_set(shard)
        if replica_set is None:
            return self._load_saved(str(shard.directory), shard, self.policy)
        # Replicated shard: strict per-replica loads first — a damaged copy
        # must fail over to its sibling, not degrade to a full scan.  The
        # engine's real policy is the *last* resort, once every replica has
        # refused a clean load.
        from dataclasses import replace as _replace

        from repro.resilience.policy import RAISE

        strict_load = _replace(
            self.policy, on_corrupt=RAISE, on_stale=RAISE, on_missing=RAISE
        )
        load = replica_set.load(
            lambda path: self._load_saved(path, shard, strict_load),
            fallback=lambda path: self._load_saved(path, shard, self.policy),
            offset=attempt_offset,
        )
        engine: FileQueryEngine = load.value
        if load.warnings:
            # Failover decisions surface on every result this engine
            # serves, exactly like load-time degradation warnings.
            engine._load_warnings.extend(load.warnings)
        with shard.lock:
            shard.replica_events = list(load.events)
        return engine

    def _load_saved(
        self, path: str, shard: _Shard, policy: DegradationPolicy
    ) -> FileQueryEngine:
        return FileQueryEngine.from_saved(
            self.schema,
            path,
            optimize_expressions=self.optimize_expressions,
            cache_config=self.cache_config,
            tracing=self.tracing,
            policy=policy,
            budget=self.budget,
            source_path=shard.source_path,
            feedback=self.feedback_config,
            feedback_history=self.feedback_history,
        )

    def _shared_plan(self, holder: dict, engine: FileQueryEngine, query: Query) -> Plan:
        """Plan once, under a lock; every other shard reuses the plan."""
        with holder["lock"]:
            if "plan" not in holder:
                holder["plan"] = engine.planner.plan(query)
            return holder["plan"]

    # -- querying --------------------------------------------------------------

    def query(
        self,
        query: QueryRequest | Query | str,
        budget: ResourceBudget | None = None,
        fail_fast: bool | None = None,
        max_parallel: int | None = None,
        hedge_after_s: float | None = None,
    ) -> ShardedQueryResult | QueryResponse:
        """Scatter the query over all shards, gather a merged result.

        Row order is deterministic: shards contribute in shard order
        regardless of completion order.  ``budget`` (or the engine-wide
        default) is stamped with an absolute end-to-end deadline here —
        once, at admission — and every shard receives the *remaining*
        time at its dispatch, so the deadline never restarts at a layer
        boundary.  A shard that produces nothing by the deadline (plus a
        small grace for its own meter to fire) is abandoned with a
        ``shard-timeout`` warning instead of hanging the request.

        With ``hedge_after_s`` (here or engine-wide), a shard still
        running after that many seconds is re-dispatched to a second
        attempt; the first finished attempt wins and the merged result
        carries a ``shard-hedged`` warning.  With ``fail_fast`` (here or
        engine-wide) any unhealthy shard raises
        :class:`~repro.errors.ShardFailedError` instead of degrading to a
        partial result.

        A :class:`~repro.api.QueryRequest` selects the unified
        :class:`~repro.api.QueryBackend` surface and returns the
        wire-ready :class:`~repro.api.QueryResponse` (the request's budget
        applies per shard; pagination slices the merged rows).
        """
        if isinstance(query, QueryRequest):
            result = self.query(query.query, budget=query.budget)
            return query_response(result, query)
        fail_fast = self.fail_fast if fail_fast is None else fail_fast
        workers = max_parallel if max_parallel is not None else self.max_parallel
        if workers < 1:
            raise ValueError(f"max_parallel must be >= 1, got {workers!r}")
        hedge_after = (
            self.hedge_after_s if hedge_after_s is None else hedge_after_s
        )
        parsed = parse_query(query) if isinstance(query, str) else query
        holder: dict[str, Any] = {"lock": threading.Lock()}
        started = perf_counter()

        effective = budget if budget is not None else self.budget
        if effective is not None:
            effective = effective.started()  # mint the deadline once, here
        outcomes = self._scatter(parsed, effective, holder, workers, hedge_after)
        return self._gather(parsed, outcomes, holder, started, fail_fast)

    def _scatter(
        self,
        query: Query,
        budget: ResourceBudget | None,
        holder: dict[str, Any],
        workers: int,
        hedge_after: float | None,
    ) -> list[_Outcome]:
        """Dispatch one task per shard and gather their outcomes, hedging
        stragglers and abandoning anything still running past the
        absolute deadline (plus grace)."""
        base = min(workers, len(self._shards))
        pool = ThreadPoolExecutor(
            # Headroom for hedge attempts: a hedge must never queue
            # behind the very straggler it is meant to outrun.
            max_workers=base * 2 if hedge_after is not None else base,
            thread_name_prefix="repro-shard",
        )
        outcomes: list[_Outcome] = [None] * len(self._shards)  # type: ignore[list-item]
        query_errors: list[tuple[int, BaseException]] = []
        try:
            tasks = [
                _ShardTask(
                    number,
                    shard,
                    primary=pool.submit(self._run_shard, shard, query, budget, holder),
                    dispatched_at=perf_counter(),
                )
                for number, shard in enumerate(self._shards)
            ]
            abandon_at: float | None = None
            if budget is not None and budget.deadline_at is not None:
                grace = min(
                    GATHER_GRACE_MAX_S,
                    max(
                        GATHER_GRACE_MIN_S,
                        (budget.deadline_s or 0.0) * GATHER_GRACE_FRACTION,
                    ),
                )
                abandon_at = budget.deadline_at + grace
            pending = list(tasks)
            while pending:
                still_pending = []
                for task in pending:
                    outcome = self._resolve_task(task, query_errors)
                    if outcome is not None:
                        outcomes[task.number] = outcome
                    else:
                        still_pending.append(task)
                pending = still_pending
                if not pending or query_errors:
                    break
                now = perf_counter()
                if abandon_at is not None and now >= abandon_at:
                    for task in pending:
                        outcomes[task.number] = self._abandon_task(task, budget)
                    break
                next_at = abandon_at
                if hedge_after is not None:
                    for task in pending:
                        if task.hedge is not None:
                            continue
                        hedge_at = task.dispatched_at + hedge_after
                        if now >= hedge_at and not task.primary.done():
                            # The hedge starts from the *next* replica of a
                            # replicated shard, so a stuck copy is raced by
                            # a different copy, not a duplicate of itself.
                            task.hedge = pool.submit(
                                self._run_shard, task.shard, query, budget, holder, 1
                            )
                            task.hedged_at = now
                        elif task.hedge is None:
                            next_at = (
                                hedge_at if next_at is None else min(next_at, hedge_at)
                            )
                live = [f for t in pending for f in t.futures() if not f.done()]
                timeout = (
                    None if next_at is None else max(0.0, next_at - perf_counter())
                )
                if live:
                    futures_wait(live, timeout=timeout, return_when=FIRST_COMPLETED)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        if query_errors:
            # Query-wide defects (bad syntax, untranslatable path) are the
            # caller's problem, not a shard fault.
            raise min(query_errors)[1]
        return outcomes

    def _resolve_task(
        self,
        task: _ShardTask,
        query_errors: list[tuple[int, BaseException]],
    ) -> _Outcome | None:
        """The task's final outcome, or ``None`` while it is undecided.

        First *successful* attempt wins; a failed attempt whose sibling
        is still running stays undecided (the hedge may yet save the
        shard)."""
        finished: list[tuple[str, _Outcome | None]] = []
        for which, future in (("primary", task.primary), ("hedge", task.hedge)):
            if future is None or not future.done():
                continue
            try:
                finished.append((which, future.result()))
            except QueryError as error:
                query_errors.append((task.number, error))
                finished.append((which, None))
        if not finished:
            return None
        healthy = [
            (which, outcome)
            for which, outcome in finished
            if outcome is not None and outcome.status == OK
        ]
        if healthy:
            which, outcome = healthy[0]
        elif len(finished) == len(task.futures()):
            remaining = [pair for pair in finished if pair[1] is not None]
            if not remaining:
                return None  # every attempt raised a query-wide error
            which, outcome = remaining[0]
        else:
            return None
        if task.hedge is not None:
            outcome.hedged = True
            outcome.winner = which
            outcome.warnings = [
                QueryWarning(
                    SHARD_HEDGED,
                    f"shard {task.shard.name!r} hedged after "
                    f"{(task.hedged_at or 0.0) - task.dispatched_at:.3f}s; "
                    f"{which} attempt won",
                    detail={"shard": task.shard.name, "winner": which},
                )
            ] + outcome.warnings
        return outcome

    def _abandon_task(
        self, task: _ShardTask, budget: ResourceBudget | None
    ) -> _Outcome:
        """Give up on a shard that produced nothing by the deadline: the
        attempt threads are detached (their eventual results discarded)
        and a releasable injected hang is woken so it fails fast."""
        for future in task.futures():
            future.cancel()
        release = getattr(self.fault_injector, "release", None)
        if callable(release):
            release()
        described = budget.describe() if budget is not None else "deadline"
        warning = QueryWarning(
            SHARD_TIMEOUT,
            f"shard {task.shard.name!r} abandoned: no result within the "
            f"request deadline ({described})",
            detail={
                "shard": task.shard.name,
                "hedged": task.hedge is not None,
                "budget": described,
            },
        )
        return _Outcome(
            shard=task.shard.name,
            status=FAILED,
            error=TimeoutError(
                f"shard {task.shard.name!r} abandoned: no result within the "
                f"request deadline"
            ),
            attempts=len(task.futures()),
            started_at=task.dispatched_at,
            ended_at=perf_counter(),
            warnings=[warning],
            breaker=task.shard.breaker.snapshot(),
            hedged=task.hedge is not None,
        )

    def _run_shard(
        self,
        shard: _Shard,
        query: Query,
        budget: ResourceBudget | None,
        holder: dict[str, Any],
        attempt_offset: int = 0,
    ) -> _Outcome:
        started = perf_counter()
        if budget is not None:
            # A shard dispatched (or hedged) late gets only the request's
            # remaining time — visibly: its own stats report the clamped
            # window, not the original full deadline.
            budget = budget.at_dispatch(started)
        if not shard.breaker.allow():
            snapshot = shard.breaker.snapshot()
            warning = QueryWarning(
                SHARD_SKIPPED_OPEN_BREAKER,
                f"shard {shard.name!r} skipped: circuit breaker "
                f"{snapshot['state']} after {snapshot['trips']} trip(s)",
                detail={"shard": shard.name, **snapshot},
            )
            return _Outcome(
                shard=shard.name,
                status=SKIPPED,
                attempts=0,
                started_at=started,
                ended_at=perf_counter(),
                warnings=[warning],
                breaker=snapshot,
            )

        retry_log: list[dict[str, Any]] = []

        def on_retry(attempt: int, error: BaseException, delay: float) -> None:
            retry_log.append(
                {"attempt": attempt, "error": str(error), "backoff_s": delay}
            )

        def attempt_once() -> QueryResult:
            if self.fault_injector is not None:
                self.fault_injector(shard.name)
            engine = self._ensure_engine(shard, attempt_offset)
            if engine.degraded:
                # A degraded engine has no indexed names; the shared
                # (index-strategy) plan does not apply — plan locally.
                return engine.query(query, budget=budget)
            plan = self._shared_plan(holder, engine, query)
            return engine.execute_plan(plan, budget=budget)

        try:
            result, attempts = call_with_retry(
                attempt_once,
                self.retry,
                sleep=self._retry_sleep,
                rng=random.Random(len(shard.name)),
                on_retry=on_retry,
            )
        except QueryError:
            raise  # query-wide, handled by the gather loop
        except Exception as error:  # noqa: BLE001 — isolation boundary
            shard.breaker.record_failure()
            attempts = len(retry_log) + 1
            warning = QueryWarning(
                SHARD_FAILED,
                f"shard {shard.name!r} failed after {attempts} attempt(s): {error}",
                detail={
                    "shard": shard.name,
                    "attempts": attempts,
                    "error": type(error).__name__,
                    "retries": [dict(event) for event in retry_log],
                },
            )
            return _Outcome(
                shard=shard.name,
                status=FAILED,
                error=error,
                attempts=attempts,
                retries=len(retry_log),
                started_at=started,
                ended_at=perf_counter(),
                warnings=[warning],
                breaker=shard.breaker.snapshot(),
            )
        shard.breaker.record_success()
        warnings = []
        if retry_log:
            warnings.append(
                QueryWarning(
                    SHARD_RETRIED,
                    f"shard {shard.name!r} succeeded after "
                    f"{len(retry_log)} retr{'y' if len(retry_log) == 1 else 'ies'}",
                    detail={
                        "shard": shard.name,
                        "retries": [dict(event) for event in retry_log],
                    },
                )
            )
        return _Outcome(
            shard=shard.name,
            status=OK,
            result=result,
            attempts=len(retry_log) + 1,
            retries=len(retry_log),
            started_at=started,
            ended_at=perf_counter(),
            warnings=warnings,
            breaker=shard.breaker.snapshot(),
        )

    def _gather(
        self,
        query: Query,
        outcomes: list[_Outcome],
        holder: dict[str, Any],
        started: float,
        fail_fast: bool,
    ) -> ShardedQueryResult:
        if fail_fast:
            for outcome in outcomes:
                if outcome.status == FAILED:
                    raise ShardFailedError(
                        outcome.shard,
                        str(outcome.error),
                        attempts=outcome.attempts,
                        cause=outcome.error,
                    ) from outcome.error
                if outcome.status == SKIPPED:
                    raise ShardFailedError(
                        outcome.shard,
                        "circuit breaker open",
                        attempts=0,
                    )

        rows: list[tuple[Value, ...]] = []
        warnings: list[QueryWarning] = []
        records: list[ShardExecution] = []
        results: list[QueryResult] = []
        shard_results: dict[str, QueryResult] = {}
        for outcome in outcomes:
            warnings.extend(outcome.warnings)
            record = ShardExecution(
                shard=outcome.shard,
                status=outcome.status,
                attempts=outcome.attempts,
                retries=outcome.retries,
                duration_s=max(0.0, outcome.ended_at - outcome.started_at),
                breaker=outcome.breaker,
                error=str(outcome.error) if outcome.error is not None else None,
                warnings=list(outcome.warnings),
            )
            if outcome.result is not None:
                rows.extend(outcome.result.rows)
                results.append(outcome.result)
                shard_results[outcome.shard] = outcome.result
                record.rows = len(outcome.result.rows)
                record.strategy = outcome.result.stats.strategy
                for inner in outcome.result.warnings:
                    tagged = QueryWarning(
                        inner.code,
                        inner.message,
                        detail={**inner.detail, "shard": outcome.shard},
                    )
                    warnings.append(tagged)
                    record.warnings.append(tagged)
            records.append(record)

        unhealthy = [o for o in outcomes if o.status != OK]
        if not results:
            first = unhealthy[0]
            raise ShardFailedError(
                first.shard,
                f"no shard produced a result "
                f"({sum(1 for o in unhealthy if o.status == FAILED)} failed, "
                f"{sum(1 for o in unhealthy if o.status == SKIPPED)} skipped); "
                f"first failure: {first.error or 'circuit breaker open'}",
                attempts=first.attempts,
                cause=first.error,
            ) from first.error
        if unhealthy:
            warnings.append(
                QueryWarning(
                    PARTIAL_RESULT,
                    f"partial result: rows from {len(results)} of "
                    f"{len(outcomes)} shards "
                    f"({sum(1 for o in unhealthy if o.status == FAILED)} failed, "
                    f"{sum(1 for o in unhealthy if o.status == SKIPPED)} skipped)",
                    detail={
                        "healthy": [o.shard for o in outcomes if o.status == OK],
                        "failed": [o.shard for o in outcomes if o.status == FAILED],
                        "skipped": [o.shard for o in outcomes if o.status == SKIPPED],
                    },
                )
            )

        trace = self._build_trace(outcomes, started) if self.tracing else None
        stats = ShardedStats(
            shards=records,
            warnings=warnings,
            duration_s=perf_counter() - started,
            trace=trace,
            results=results,
        )
        return ShardedQueryResult(
            rows=rows,
            plan=holder.get("plan"),
            stats=stats,
            shard_results=shard_results,
            trace=trace,
        )

    def _build_trace(self, outcomes: list[_Outcome], started: float) -> Trace:
        """One ``shard:<name>`` span per shard under a ``shard-query``
        root, each healthy shard's own pipeline trace grafted beneath.
        Replicated shards additionally get one ``replica:{shard}:{i}``
        child span per replica load attempt."""
        root = Span("shard-query", started_at=started)
        for outcome in outcomes:
            span = Span(
                f"shard:{outcome.shard}",
                started_at=outcome.started_at,
                ended_at=outcome.ended_at,
                metrics={
                    "status": outcome.status,
                    "attempts": outcome.attempts,
                    "retries": outcome.retries,
                    "breaker": outcome.breaker.get("state", "closed"),
                },
            )
            if outcome.hedged:
                span.annotate(hedged=True, winner=outcome.winner)
            try:
                shard = self._shard_by_name(outcome.shard)
            except KeyError:  # pragma: no cover — outcomes mirror shards
                shard = None
            if shard is not None and shard.replica_events:
                for event in shard.replica_events:
                    child = Span(
                        f"replica:{outcome.shard}:{event.index}",
                        started_at=event.started_at,
                        ended_at=event.ended_at,
                        metrics={"replica": event.replica, "ok": event.ok},
                    )
                    if event.error is not None:
                        child.annotate(error=event.error)
                    if event.reason is not None:
                        child.annotate(reason=event.reason)
                    span.children.append(child)
            if outcome.result is not None:
                span.annotate(
                    rows=len(outcome.result.rows),
                    strategy=outcome.result.stats.strategy,
                )
                if outcome.result.trace is not None:
                    span.children.append(outcome.result.trace.root)
            root.children.append(span)
        root.ended_at = perf_counter()
        root.annotate(
            shards=len(outcomes),
            healthy=sum(1 for o in outcomes if o.status == OK),
        )
        return Trace(root)

    # -- introspection ---------------------------------------------------------

    def explain(self, query: QueryRequest | Query | str) -> str | ExplainResponse:
        """The shared plan (built on the first loadable shard) plus the
        shard roster.  A :class:`~repro.api.QueryRequest` returns the
        wire-ready :class:`~repro.api.ExplainResponse`."""
        from repro.core.explain import explain_plan

        if isinstance(query, QueryRequest):
            return ExplainResponse(text=self.explain(query.query))
        engine = self._any_engine()
        plan = engine.planner.plan(
            parse_query(query) if isinstance(query, str) else query
        )
        lines = [explain_plan(plan, cache=self.cache_description())]
        lines.append(
            f"shards:    {len(self._shards)} "
            f"(plan reused per shard; retry: {self.retry.describe()}; "
            f"breaker: {self.breaker_config.describe()})"
        )
        for shard in self._shards:
            state = shard.breaker.snapshot()["state"]
            loaded = "loaded" if shard.engine is not None else "lazy"
            lines.append(f"  {shard.name}  [{loaded}, breaker {state}]")
        return "\n".join(lines)

    def analyze(
        self,
        query: QueryRequest | Query | str,
        budget: ResourceBudget | None = None,
    ) -> Analysis | AnalyzeResponse:
        """EXPLAIN ANALYZE over the whole corpus: the shared plan's
        per-node estimates paired with measured actuals from one healthy
        shard, plus the scatter-gather trace and the per-shard stats
        (``stats.to_dict()["shards"]``).  A :class:`~repro.api.QueryRequest`
        returns the wire-ready :class:`~repro.api.AnalyzeResponse` (the
        request budget applies per shard)."""
        if isinstance(query, QueryRequest):
            return AnalyzeResponse.from_analysis(
                self.analyze(query.query, budget=query.budget)
            )
        result = self.query(query, budget=budget)
        plan = result.plan
        if plan is None:
            # Every healthy shard ran degraded (local full-scan plans);
            # report the plan the degraded engines actually used.
            first = next(iter(result.shard_results.values()))
            plan = first.plan
        nodes = []
        if plan.optimized_expression is not None:
            engine = self._any_indexed_engine()
            if engine is not None:
                node_log: dict = {}
                engine.index.run(
                    plan.optimized_expression, node_log=node_log, use_cache=False
                )
                # Estimate (and, when enabled, feed the shared history)
                # against the instrumented shard's own fingerprint:
                # per-shard keying is what makes the corrections honest.
                nodes = build_node_table(
                    plan.optimized_expression,
                    node_log,
                    estimator=engine.cost_model.estimate_rows,
                )
                if self.feedback_config.enabled:
                    fed = engine.cost_model.observe_tree(
                        plan.optimized_expression, node_log
                    )
                    if fed:
                        self.save_feedback()
        return Analysis(
            plan=plan,
            stats=result.stats,  # type: ignore[arg-type] — duck-typed facade
            nodes=nodes,
            trace=result.trace,
            cache=self.cache_description(),
        )

    def save_feedback(self) -> None:
        """Persist the shared calibration history to its configured
        directory (no-op when feedback is disabled or in-memory only)."""
        if self.feedback_config.enabled and self.feedback_config.directory:
            self.feedback_history.save(
                Path(self.feedback_config.directory) / HISTORY_FILENAME
            )

    def calibration_state(self) -> dict[str, Any]:
        """Deprecated: use :meth:`stats` (``stats().calibration``) instead."""
        _warnings.warn(
            "ShardedEngine.calibration_state() is deprecated; "
            "use ShardedEngine.stats().calibration instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._calibration_state()

    def _calibration_state(self) -> dict[str, Any]:
        """Corpus-wide calibration state: the shared history's snapshot
        (per-shard fingerprints appear as distinct entries)."""
        return {
            "enabled": self.feedback_config.enabled,
            "directory": self.feedback_config.directory,
            "shards": len(self._shards),
            **self.feedback_history.snapshot(),
        }

    def stats(self) -> StatsResponse:
        """The unified :class:`~repro.api.QueryBackend` stats surface.

        ``cache`` sums the per-shard :class:`~repro.cache.CacheStats`
        counters key-wise across the shard engines loaded so far (lazy
        shards contribute nothing until first touched); ``index``
        summarizes the shard roster rather than one index's internals.
        """
        loaded = [shard.engine for shard in self._shards if shard.engine is not None]
        cache: dict[str, Any] = {}
        for engine in loaded:
            for key, value in engine.cache_stats.to_dict().items():
                cache[key] = cache.get(key, 0) + value
        index: dict[str, Any] = {
            "shards": len(self._shards),
            "loaded_shards": len(loaded),
            "per_shard": {
                shard.name: shard.engine.statistics().to_dict()
                for shard in self._shards
                if shard.engine is not None
            },
        }
        return StatsResponse(
            index=index,
            cache_config=self.cache_description(),
            cache=cache,
            calibration=self._calibration_state(),
            backend={
                "type": "sharded",
                "shard_names": self.shard_names,
                "breakers": {
                    shard.name: shard.breaker.snapshot()["state"]
                    for shard in self._shards
                },
                "replica_health": self.replica_health(),
            },
        )

    def replica_health(self) -> list[dict[str, Any]]:
        """Per-replica health of every replicated shard, in shard order
        (``[]`` when no shard uses the replicated layout) — the shape
        served under ``replicas`` in ``GET /healthz``."""
        health: list[dict[str, Any]] = []
        for shard in self._shards:
            replica_set = self._replica_set(shard)
            if replica_set is not None:
                health.append(replica_set.health())
        return health

    def _any_engine(self) -> FileQueryEngine:
        """The first shard engine that loads (for planning/explain)."""
        last_error: Exception | None = None
        for shard in self._shards:
            try:
                return self._ensure_engine(shard)
            except Exception as error:  # noqa: BLE001 — try the next shard
                last_error = error
        raise ShardFailedError(
            self._shards[0].name,
            f"no shard engine could be loaded: {last_error}",
            cause=last_error,
        ) from last_error

    def _any_indexed_engine(self) -> FileQueryEngine | None:
        for shard in self._shards:
            if shard.engine is not None and not shard.engine.degraded:
                return shard.engine
        return None

    def cache_description(self) -> str:
        """Aggregated cache activity across the shard engines loaded so far."""
        loaded = [shard.engine for shard in self._shards if shard.engine is not None]
        if not loaded:
            return "no shard engines loaded yet"
        expression_hits = sum(e.cache_stats.expression_hits for e in loaded)
        expression_misses = sum(e.cache_stats.expression_misses for e in loaded)
        parse_hits = sum(e.cache_stats.parse_hits for e in loaded)
        parse_misses = sum(e.cache_stats.parse_misses for e in loaded)
        avoided = sum(e.cache_stats.bytes_parse_avoided for e in loaded)
        return (
            f"{loaded[0].cache_config.describe()} x{len(loaded)} shard(s); "
            f"expr {expression_hits}h/{expression_misses}m, "
            f"parse {parse_hits}h/{parse_misses}m, "
            f"{avoided} bytes not reparsed"
        )
