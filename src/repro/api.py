"""The unified engine API: one request/response family for every caller.

Before this module each frontend spoke its own dialect:
:class:`~repro.core.engine.FileQueryEngine` returned
:class:`~repro.core.engine.QueryResult`,
:class:`~repro.shard.ShardedEngine` returned
:class:`~repro.shard.ShardedQueryResult`, and the CLI hand-assembled JSON
envelopes from whichever it got.  The query server
(:mod:`repro.server`) would have been a third dialect.  Instead, this
module pins **one request/response dataclass family** plus a
:class:`QueryBackend` protocol that both engines satisfy, so the server,
the CLI, and library callers all speak one surface:

>>> from repro import FileQueryEngine, QueryRequest
>>> from repro.workloads.bibtex import bibtex_schema, generate_bibtex
>>> engine = FileQueryEngine(bibtex_schema(), generate_bibtex(entries=20))
>>> response = engine.query(QueryRequest("SELECT r.Key FROM Reference r"))
>>> response.total_rows
20

The rich per-engine results remain available — passing query *text* (or a
parsed :class:`~repro.db.query.Query`) keeps the historical signatures and
return types, unchanged.  Passing a :class:`QueryRequest` selects the
unified surface and returns the wire-ready dataclasses below.

Pagination
----------
A :class:`QueryRequest` may carry ``page_size`` and an opaque ``cursor``
token.  The response's :attr:`QueryResponse.next_cursor` feeds the next
request; pages re-execute the query against the engine's thread-safe
plan/region/parse caches, so repeat pages are warm-cache cheap and the
cursor itself stays stateless (it encodes only a query digest and an
offset — safe to hand to untrusted clients, impossible to desynchronize
from server restarts).
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Protocol, runtime_checkable

from repro.db.query import Query
from repro.db.values import AtomicValue, ObjectValue, canonical
from repro.errors import PaginationError
from repro.resilience.budget import ResourceBudget

if TYPE_CHECKING:  # pragma: no cover - annotations only (avoids cycles)
    from repro.obs.analyze import Analysis


# -- rendering ----------------------------------------------------------------------


def render_value(value: Any) -> str:
    """One result value as a stable display string (the shape the CLI has
    always printed; now shared with the server so both emit identical
    rows)."""
    if isinstance(value, AtomicValue):
        return value.text
    if isinstance(value, ObjectValue):
        scalars = {
            key: child.text
            for key, child in value.attributes.items()
            if isinstance(child, AtomicValue)
        }
        inner = ", ".join(f"{key}={text!r}" for key, text in sorted(scalars.items()))
        return f"{value.class_name}({inner})"
    return str(canonical(value))


def render_rows(rows: list[tuple]) -> list[list[str]]:
    """Every row rendered to display strings (the wire format for rows)."""
    return [[render_value(value) for value in row] for row in rows]


# -- pagination cursors -------------------------------------------------------------


def query_digest(query_text: str) -> str:
    """A short stable digest binding a cursor to its query text."""
    return hashlib.sha256(query_text.encode("utf-8")).hexdigest()[:16]


def encode_cursor(digest: str, offset: int, page_size: int) -> str:
    """An opaque, URL-safe continuation token."""
    payload = json.dumps({"q": digest, "o": offset, "n": page_size})
    return base64.urlsafe_b64encode(payload.encode("utf-8")).decode("ascii")


def decode_cursor(token: str) -> tuple[str, int, int]:
    """``(digest, offset, page_size)`` from a token; raises
    :class:`~repro.errors.PaginationError` on anything malformed."""
    try:
        payload = json.loads(base64.urlsafe_b64decode(token.encode("ascii")))
        digest, offset, page_size = payload["q"], payload["o"], payload["n"]
    except (binascii.Error, UnicodeError, ValueError, KeyError, TypeError) as error:
        raise PaginationError(f"malformed cursor token: {error}") from error
    if not isinstance(digest, str) or not isinstance(offset, int) or not isinstance(
        page_size, int
    ):
        raise PaginationError("malformed cursor token: wrong field types")
    if offset < 0 or page_size < 1:
        raise PaginationError(
            f"malformed cursor token: offset {offset}, page_size {page_size}"
        )
    return digest, offset, page_size


# -- requests -----------------------------------------------------------------------


@dataclass(frozen=True)
class QueryRequest:
    """One query as a unified-surface request.

    Attributes
    ----------
    query:
        The XSQL-subset query text (or an already-parsed
        :class:`~repro.db.query.Query`).
    budget:
        Optional per-request :class:`~repro.resilience.ResourceBudget`
        (the server mints these from its server-level budget).
    cursor:
        Opaque continuation token from a previous response's
        ``next_cursor``; must belong to the same query text.
    page_size:
        Rows per page.  ``None`` returns everything in one response.
    """

    query: Query | str
    budget: ResourceBudget | None = None
    cursor: str | None = None
    page_size: int | None = None

    def __post_init__(self) -> None:
        if self.page_size is not None and self.page_size < 1:
            raise PaginationError(
                f"page_size must be >= 1, got {self.page_size!r}"
            )

    @property
    def query_text(self) -> str:
        return self.query.render() if isinstance(self.query, Query) else self.query

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "QueryRequest":
        """Build a request from a wire payload (the server's POST body).

        Accepted keys: ``query`` (required), ``cursor``, ``page_size``,
        and ``budget`` — a ``{"deadline_ms", "max_regions",
        "max_bytes_parsed"}`` object.  Anything else is rejected so typos
        fail loudly instead of silently doing nothing.
        """
        if not isinstance(data, Mapping):
            raise PaginationError(f"request body must be an object, got {type(data).__name__}")
        unknown = set(data) - {"query", "cursor", "page_size", "budget"}
        if unknown:
            raise PaginationError(f"unknown request field(s): {', '.join(sorted(unknown))}")
        query = data.get("query")
        if not isinstance(query, str) or not query.strip():
            raise PaginationError("request needs a non-empty string 'query'")
        cursor = data.get("cursor")
        if cursor is not None and not isinstance(cursor, str):
            raise PaginationError("'cursor' must be a string")
        page_size = data.get("page_size")
        if page_size is not None and (isinstance(page_size, bool) or not isinstance(page_size, int)):
            raise PaginationError("'page_size' must be an integer")
        budget = None
        raw_budget = data.get("budget")
        if raw_budget is not None:
            if not isinstance(raw_budget, Mapping):
                raise PaginationError("'budget' must be an object")
            bad = set(raw_budget) - {"deadline_ms", "max_regions", "max_bytes_parsed"}
            if bad:
                raise PaginationError(
                    f"unknown budget field(s): {', '.join(sorted(bad))}"
                )
            deadline_ms = raw_budget.get("deadline_ms")
            budget = ResourceBudget(
                deadline_s=deadline_ms / 1e3 if deadline_ms is not None else None,
                max_regions=raw_budget.get("max_regions"),
                max_bytes_parsed=raw_budget.get("max_bytes_parsed"),
            )
        return cls(query=query, budget=budget, cursor=cursor, page_size=page_size)


# -- responses ----------------------------------------------------------------------


@dataclass
class QueryResponse:
    """One page of query results in wire form.

    ``rows`` are display-rendered strings (identical to the CLI's
    historical ``--json`` rows).  ``row_start``/``total_rows`` locate the
    page; ``next_cursor`` is the continuation token (``None`` on the last
    page).  ``stats`` is the stable
    :meth:`~repro.obs.stats.QueryStats.to_dict` shape and ``warnings``
    the structured ``{code, message, detail}`` incident list.
    """

    rows: list[list[str]]
    warnings: list[dict[str, Any]] = field(default_factory=list)
    stats: dict[str, Any] = field(default_factory=dict)
    row_start: int = 0
    total_rows: int = 0
    next_cursor: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "rows": self.rows,
            "warnings": self.warnings,
            "stats": self.stats,
            "row_start": self.row_start,
            "total_rows": self.total_rows,
            "next_cursor": self.next_cursor,
        }


@dataclass
class ExplainResponse:
    """A plan explanation (the ``explain`` text, line-split for JSON)."""

    text: str

    def to_dict(self) -> dict[str, Any]:
        return {"text": self.text, "lines": self.text.splitlines()}


@dataclass
class AnalyzeResponse:
    """An EXPLAIN ANALYZE report in wire form.

    ``analysis`` is exactly :meth:`~repro.obs.analyze.Analysis.to_dict`
    (the shape pinned by ``schemas/analyze.schema.json``); ``text`` is the
    human-readable rendering.  ``to_dict`` returns the pinned shape
    unchanged, so the CLI's ``analyze --json`` contract cannot drift.
    """

    analysis: dict[str, Any]
    text: str = ""

    @classmethod
    def from_analysis(cls, analysis: "Analysis") -> "AnalyzeResponse":
        return cls(analysis=analysis.to_dict(), text=analysis.render())

    def to_dict(self) -> dict[str, Any]:
        return dict(self.analysis)


@dataclass
class StatsResponse:
    """Backend statistics in wire form: index statistics, cache
    configuration and lifetime activity, calibration state, and a
    ``backend`` descriptor saying what kind of engine answered."""

    index: dict[str, Any]
    cache_config: str
    cache: dict[str, Any]
    calibration: dict[str, Any]
    backend: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "cache_config": self.cache_config,
            "cache": self.cache,
            "calibration": self.calibration,
            "backend": self.backend,
        }


# -- the backend protocol -----------------------------------------------------------


@runtime_checkable
class QueryBackend(Protocol):
    """What a query-serving backend must answer.

    Both :class:`~repro.core.engine.FileQueryEngine` and
    :class:`~repro.shard.ShardedEngine` satisfy this: given a
    :class:`QueryRequest` their ``query``/``explain``/``analyze`` return
    the unified response dataclasses, and ``stats()`` reports the
    :class:`StatsResponse`.  The server (and any other frontend) depends
    only on this protocol — a test double is a four-method class.
    """

    def query(self, query: "QueryRequest", /) -> "QueryResponse":
        """Execute one request, honoring its budget and pagination."""
        ...  # pragma: no cover - protocol

    def explain(self, query: "QueryRequest", /) -> "ExplainResponse":
        """Describe the plan for a request without executing it."""
        ...  # pragma: no cover - protocol

    def analyze(self, query: "QueryRequest", /) -> "AnalyzeResponse":
        """EXPLAIN ANALYZE: execute and report estimates next to actuals."""
        ...  # pragma: no cover - protocol

    def stats(self) -> "StatsResponse":
        """Index/cache/calibration statistics for this backend."""
        ...  # pragma: no cover - protocol


# -- response builders (shared by engines, CLI, and server) -------------------------


def paginate(
    rendered: list[list[str]], request: QueryRequest
) -> tuple[list[list[str]], int, str | None]:
    """Slice rendered rows per the request's cursor/page_size.

    Returns ``(page, row_start, next_cursor)``.  A cursor must carry the
    digest of the *same* query text — a token replayed against a
    different query raises :class:`~repro.errors.PaginationError` instead
    of silently serving the wrong page.
    """
    digest = query_digest(request.query_text)
    offset = 0
    page_size = request.page_size
    if request.cursor is not None:
        token_digest, offset, token_page = decode_cursor(request.cursor)
        if token_digest != digest:
            raise PaginationError(
                "cursor does not belong to this query (issue a fresh "
                "request without a cursor)"
            )
        page_size = page_size if page_size is not None else token_page
    if page_size is None:
        return rendered, 0, None
    page = rendered[offset : offset + page_size]
    end = offset + len(page)
    next_cursor = (
        encode_cursor(digest, end, page_size) if end < len(rendered) else None
    )
    return page, offset, next_cursor


def query_response(result: Any, request: QueryRequest) -> QueryResponse:
    """Package an executed result (single-engine or sharded — both carry
    ``rows``, ``warnings``, and a ``stats.to_dict()``) into one page."""
    rendered = render_rows(result.rows)
    page, row_start, next_cursor = paginate(rendered, request)
    return QueryResponse(
        rows=page,
        warnings=[warning.to_dict() for warning in result.warnings],
        stats=result.stats.to_dict(),
        row_start=row_start,
        total_rows=len(rendered),
        next_cursor=next_cursor,
    )


__all__ = [
    "QueryRequest",
    "QueryResponse",
    "ExplainResponse",
    "AnalyzeResponse",
    "StatsResponse",
    "QueryBackend",
    "render_value",
    "render_rows",
    "query_response",
    "paginate",
    "query_digest",
    "encode_cursor",
    "decode_cursor",
]
