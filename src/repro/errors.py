"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  Sub-hierarchies mirror the major
subsystems (algebra, indexing, schemas, database, query compilation).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class RegionError(ReproError):
    """Invalid region or region-set construction (e.g. end before start)."""


class AlgebraError(ReproError):
    """Invalid region-algebra expression or evaluation failure."""


class UnknownRegionNameError(AlgebraError):
    """A region expression refers to a region name that is not indexed."""

    def __init__(self, name: str, available: tuple[str, ...] = ()) -> None:
        self.name = name
        self.available = available
        detail = f"unknown region name {name!r}"
        if available:
            detail += f" (indexed: {', '.join(sorted(available))})"
        super().__init__(detail)


class RigError(ReproError):
    """Invalid region inclusion graph or RIG-related analysis failure."""


class GrammarError(ReproError):
    """Ill-formed grammar or structuring schema."""


class ParseError(ReproError):
    """A file (or file region) does not match the structuring grammar."""

    def __init__(self, message: str, position: int = 0, symbol: str | None = None) -> None:
        self.position = position
        self.symbol = symbol
        #: The bare message, without the position/symbol prefix — kept so
        #: wrappers and memos can re-surface the error without re-prefixing.
        self.detail = message
        prefix = f"parse error at offset {position}"
        if symbol is not None:
            prefix += f" (while parsing <{symbol}>)"
        super().__init__(f"{prefix}: {message}")


class CandidateParseError(ParseError):
    """A candidate region failed to re-parse under a strict (non-skipping)
    degradation policy.

    Wraps the underlying :class:`ParseError` without stringifying it:
    ``position`` and ``symbol`` are preserved from the original error, and
    ``region`` records the candidate ``(start, end)`` span that failed.
    """

    def __init__(
        self,
        message: str,
        position: int = 0,
        symbol: str | None = None,
        region: tuple[int, int] | None = None,
    ) -> None:
        self.region = region
        super().__init__(message, position=position, symbol=symbol)

    @classmethod
    def wrap(cls, error: "ParseError", region: tuple[int, int]) -> "CandidateParseError":
        """Lift a raw :class:`ParseError` raised while re-parsing one
        candidate region, keeping its ``position``/``symbol`` attributes."""
        detail = getattr(error, "detail", None) or str(error)
        return cls(
            f"candidate region {region} rejected: {detail}",
            position=error.position,
            symbol=error.symbol,
            region=region,
        )


class QueryError(ReproError):
    """Ill-formed query (syntax or semantic error)."""


class QuerySyntaxError(QueryError):
    """The query text could not be parsed."""

    def __init__(self, message: str, position: int = 0) -> None:
        self.position = position
        super().__init__(f"query syntax error at offset {position}: {message}")


class TranslationError(QueryError):
    """A query path does not match any path in the region inclusion graph."""


class PaginationError(QueryError):
    """A malformed unified-API request: bad cursor token, a cursor replayed
    against a different query, or invalid request/budget fields (see
    :mod:`repro.api`)."""


class PlanningError(QueryError):
    """The planner cannot produce an executable plan for a query."""


class DatabaseError(ReproError):
    """Errors in the object database substrate."""


class RegionIndexError(ReproError):
    """Errors in the indexing engine.

    Historically spelled ``IndexError_`` (with a trailing underscore to
    avoid shadowing the builtin :class:`IndexError`); that name still
    resolves to this class but emits a :class:`DeprecationWarning`.
    """


class IndexConfigError(RegionIndexError):
    """Invalid index configuration (unknown non-terminal, bad scope, ...)."""


class IndexNotFoundError(RegionIndexError):
    """No saved index exists at the attempted path."""

    def __init__(self, path: str, detail: str = "") -> None:
        self.path = str(path)
        message = f"no saved index at {self.path!r}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class IndexCorruptError(RegionIndexError):
    """A saved index failed integrity verification (checksum mismatch,
    truncated/unparseable file, unsupported format version, ...)."""

    def __init__(self, path: str, reason: str, part: str | None = None) -> None:
        self.path = str(path)
        self.reason = reason
        self.part = part
        where = f"{self.path!r}" if part is None else f"{self.path!r} ({part})"
        super().__init__(f"saved index at {where} is corrupt: {reason}")


class JournalCorruptError(RegionIndexError):
    """A write-ahead journal failed integrity verification.

    Torn *tails* (a frame that simply runs past end-of-file, the signature
    of a crash mid-append) are **not** corruption — replay truncates them
    silently, because appends only ever extend the journal.  This error is
    reserved for damage that truncation cannot explain: a fully present
    frame whose CRC32 does not match its payload, a frame header too short
    to be a frame, or sequence numbers that go backwards — in-place bit
    rot or foreign writes, where dropping data would be silent loss.

    Attributes
    ----------
    path:
        The journal file that failed verification.
    reason:
        What was wrong.
    offset:
        Byte offset of the offending frame within the journal.
    """

    def __init__(self, path: str, reason: str, offset: int | None = None) -> None:
        self.path = str(path)
        self.reason = reason
        self.offset = offset
        where = self.path if offset is None else f"{self.path} at byte {offset}"
        super().__init__(f"journal {where!r} is corrupt: {reason}")


class IndexStaleError(RegionIndexError):
    """A saved index no longer matches its source file (the file changed
    after the index was built)."""

    def __init__(
        self,
        path: str,
        reason: str,
        saved_fingerprint: str | None = None,
        current_fingerprint: str | None = None,
    ) -> None:
        self.path = str(path)
        self.reason = reason
        self.saved_fingerprint = saved_fingerprint
        self.current_fingerprint = current_fingerprint
        super().__init__(f"saved index at {self.path!r} is stale: {reason}")


class ShardError(ReproError):
    """Errors in sharded-corpus execution (see :mod:`repro.shard`)."""


class ShardFailedError(ShardError):
    """A shard could not be queried and the execution ran in fail-fast
    (strict) mode — or *no* shard produced rows, leaving nothing to answer
    with.

    Attributes
    ----------
    shard:
        The failing shard's name.
    attempts:
        How many attempts (1 + retries) were made before giving up.
        ``0`` when the shard was never attempted (circuit breaker open).
    reason:
        Human-readable account of the final failure.
    cause:
        The underlying exception, when one exists (also chained as
        ``__cause__`` where the raise site allows).
    """

    def __init__(
        self,
        shard: str,
        reason: str,
        attempts: int = 1,
        cause: BaseException | None = None,
    ) -> None:
        self.shard = shard
        self.reason = reason
        self.attempts = attempts
        self.cause = cause
        if attempts == 0:
            message = f"shard {shard!r} skipped: {reason}"
        else:
            message = f"shard {shard!r} failed after {attempts} attempt(s): {reason}"
        super().__init__(message)


class WriteQuorumError(ShardError):
    """A live append could not reach its configured write quorum: fewer
    than ``quorum`` replica journals acknowledged the frame.

    Replica journals that *did* acknowledge keep the frame — recovery
    promotes any frame durable on at least one journal — so the record may
    reappear after a restart even though the append raised.  Idempotent
    retries (a client ``request_id``) make that safe.

    Attributes
    ----------
    shard:
        The tail shard the append targeted.
    acked / quorum / replicas:
        How many journals acknowledged, how many were required, and how
        many exist.
    cause:
        The last per-journal failure, when one exists.
    """

    def __init__(
        self,
        shard: str,
        acked: int,
        quorum: int,
        replicas: int,
        cause: BaseException | None = None,
    ) -> None:
        self.shard = shard
        self.acked = acked
        self.quorum = quorum
        self.replicas = replicas
        self.cause = cause
        super().__init__(
            f"append to shard {shard!r} reached {acked}/{replicas} replica "
            f"journal(s); write quorum is {quorum}"
        )


class DuplicateRequestError(ReproError):
    """An idempotent append reused a ``request_id`` with a *different*
    record than the one originally acknowledged under that id.  Replaying
    the same request is welcome (it dedupes); rebinding the id to new
    content is always a client bug, answered with a conflict rather than a
    silent second append.
    """

    def __init__(self, request_id: str, seq: int) -> None:
        self.request_id = request_id
        self.seq = seq
        super().__init__(
            f"request id {request_id!r} was already acknowledged as seq {seq} "
            "with a different record"
        )


class ServerError(ReproError):
    """Errors in the query-serving layer (see :mod:`repro.server`)."""


class ServerOverloadedError(ServerError):
    """The server declined to admit a request: the worker pool and its
    queue are full, or the server-level budget has no quota left to mint.

    Carries a ``snapshot`` of the admission state (in-flight requests,
    queue depth, per-request quota, lifetime tallies) so the structured
    429-style error tells the client *why* — and the caller can back off
    intelligently.
    """

    def __init__(self, reason: str, snapshot: dict | None = None) -> None:
        self.reason = reason
        self.snapshot = snapshot if snapshot is not None else {}
        super().__init__(f"server overloaded: {reason}")


class ServerDrainingError(ServerError):
    """The server is shutting down gracefully: it no longer admits new
    engine work, while requests already executing run to completion under
    the drain deadline.  Queued-but-unstarted requests receive this error
    too — they never ran, so retrying elsewhere (or after
    ``retry_after_s``) is always safe.
    """

    def __init__(self, reason: str, retry_after_s: float | None = None) -> None:
        self.reason = reason
        self.retry_after_s = retry_after_s
        super().__init__(f"server draining: {reason}")


class FeedbackError(ReproError):
    """Errors in the feedback-calibration subsystem (see
    :mod:`repro.feedback`)."""


class CalibrationCorruptError(FeedbackError):
    """A persisted calibration history failed its integrity checks.

    Calibration only *steers* plans — answers stay correct either way — so
    callers may treat this as "start cold" rather than fatal; the error is
    typed so that choice is explicit, never silent.

    Attributes
    ----------
    path:
        The file that failed to load.
    reason:
        What was wrong: bad JSON, checksum mismatch, unsupported format,
        malformed records.
    """

    def __init__(self, path: str, reason: str) -> None:
        self.path = str(path)
        self.reason = reason
        super().__init__(
            f"calibration history at {self.path!r} is corrupt: {reason}"
        )


class BudgetExceededError(ReproError):
    """Query execution exceeded its :class:`~repro.resilience.ResourceBudget`.

    Attributes
    ----------
    resource:
        Which limit tripped: ``"wall_clock"``, ``"regions"``, or ``"bytes"``.
    limit / spent:
        The configured limit and the amount consumed when the guard fired.
    partial:
        A dict snapshot of the work done so far (regions materialized,
        bytes parsed, elapsed seconds) — the partial execution statistics.
    trace:
        The partial pipeline :class:`~repro.obs.trace.Trace` up to the
        abort, when tracing was enabled (``None`` otherwise).
    """

    def __init__(
        self,
        resource: str,
        limit: float,
        spent: float,
        partial: dict | None = None,
    ) -> None:
        self.resource = resource
        self.limit = limit
        self.spent = spent
        self.partial = partial if partial is not None else {}
        self.trace = None
        unit = {"wall_clock": "s", "regions": " regions", "bytes": " bytes"}.get(
            resource, ""
        )
        super().__init__(
            f"query budget exceeded: {resource} limit {limit}{unit} "
            f"(spent {spent}{unit})"
        )


def __getattr__(name: str):
    if name == "IndexError_":
        import warnings

        warnings.warn(
            "repro.errors.IndexError_ is deprecated; use "
            "repro.errors.RegionIndexError instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return RegionIndexError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
