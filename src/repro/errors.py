"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one base class.  Sub-hierarchies mirror the major
subsystems (algebra, indexing, schemas, database, query compilation).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class RegionError(ReproError):
    """Invalid region or region-set construction (e.g. end before start)."""


class AlgebraError(ReproError):
    """Invalid region-algebra expression or evaluation failure."""


class UnknownRegionNameError(AlgebraError):
    """A region expression refers to a region name that is not indexed."""

    def __init__(self, name: str, available: tuple[str, ...] = ()) -> None:
        self.name = name
        self.available = available
        detail = f"unknown region name {name!r}"
        if available:
            detail += f" (indexed: {', '.join(sorted(available))})"
        super().__init__(detail)


class RigError(ReproError):
    """Invalid region inclusion graph or RIG-related analysis failure."""


class GrammarError(ReproError):
    """Ill-formed grammar or structuring schema."""


class ParseError(ReproError):
    """A file (or file region) does not match the structuring grammar."""

    def __init__(self, message: str, position: int = 0, symbol: str | None = None) -> None:
        self.position = position
        self.symbol = symbol
        prefix = f"parse error at offset {position}"
        if symbol is not None:
            prefix += f" (while parsing <{symbol}>)"
        super().__init__(f"{prefix}: {message}")


class QueryError(ReproError):
    """Ill-formed query (syntax or semantic error)."""


class QuerySyntaxError(QueryError):
    """The query text could not be parsed."""

    def __init__(self, message: str, position: int = 0) -> None:
        self.position = position
        super().__init__(f"query syntax error at offset {position}: {message}")


class TranslationError(QueryError):
    """A query path does not match any path in the region inclusion graph."""


class PlanningError(QueryError):
    """The planner cannot produce an executable plan for a query."""


class DatabaseError(ReproError):
    """Errors in the object database substrate."""


class RegionIndexError(ReproError):
    """Errors in the indexing engine.

    Historically spelled ``IndexError_`` (with a trailing underscore to
    avoid shadowing the builtin :class:`IndexError`); that name still
    resolves to this class but emits a :class:`DeprecationWarning`.
    """


class IndexConfigError(RegionIndexError):
    """Invalid index configuration (unknown non-terminal, bad scope, ...)."""


def __getattr__(name: str):
    if name == "IndexError_":
        import warnings

        warnings.warn(
            "repro.errors.IndexError_ is deprecated; use "
            "repro.errors.RegionIndexError instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return RegionIndexError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
