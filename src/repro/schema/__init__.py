"""Structuring schemas (Section 4, after [ACM93]).

A structuring schema is "a database schema and a grammar annotated with
database programs": the grammar describes the file's structure, the
annotations say how each derivation rule's word maps into the database.
This package provides:

- :mod:`repro.schema.grammar` — the grammar formalism (sequence, star and
  alternative rules over literals, terminals and non-terminals);
- :mod:`repro.schema.types` — database type descriptions for annotations;
- :mod:`repro.schema.actions` — rule actions (``$$ := ...`` programs),
  including the automatic *natural* actions of Section 4.2;
- :mod:`repro.schema.parser` — a backtracking recursive-descent parser that
  captures the region of every non-terminal occurrence (these regions are
  what the region indexes record), and can re-parse an arbitrary file region
  starting at any non-terminal (needed for candidate parsing, Section 6.2);
- :mod:`repro.schema.structuring` — the :class:`StructuringSchema` façade;
- :mod:`repro.schema.pushdown` — selective instantiation: build only the
  database values a query needs ([ACM93]'s optimization, used in the
  candidate-filtering phase).
"""

from repro.schema.grammar import (
    Grammar,
    NonTerminal,
    Literal,
    TWord,
    TQuoted,
    TUntil,
    TNumber,
    SeqRule,
    StarRule,
)
from repro.schema.parser import Parser, ParseNode
from repro.schema.structuring import StructuringSchema
from repro.schema.pushdown import PathTrie, instantiate

__all__ = [
    "Grammar",
    "NonTerminal",
    "Literal",
    "TWord",
    "TQuoted",
    "TUntil",
    "TNumber",
    "SeqRule",
    "StarRule",
    "Parser",
    "ParseNode",
    "StructuringSchema",
    "PathTrie",
    "instantiate",
]
