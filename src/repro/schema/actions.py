"""Rule actions: the ``{$$ := ...}`` programs of annotated grammars.

A *natural* structuring schema (Section 4.2) derives its actions from the
grammar shape:

- star rules ``A -> B*`` build a set (``$$ := ∪ $i``) — or a list when the
  schema declares ``A`` list-valued;
- sequence rules with several capturing items build a tuple (or a new object
  when ``A`` is declared a class), with attributes named after the
  non-terminals (``$$ := tuple(B1: $1, ..., Bn: $n)``);
- sequence rules with a single capturing item pass the child's value through
  (``$$ := $1``) — this covers atomic fields like ``Key -> string`` and unit
  rules, whose non-terminals are *transparent* in attribute paths.

Custom actions may be supplied per non-terminal to override the natural
behaviour (the paper's general, non-natural schemas); a custom action is a
callable ``(node, child_values) -> Value`` where ``child_values`` is the list
of ``(symbol, value)`` pairs for the rule's capturing items in order.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.db.values import (
    AtomicValue,
    ListValue,
    ObjectValue,
    SetValue,
    TupleValue,
    Value,
)
from repro.errors import GrammarError
from repro.schema.grammar import SeqRule, StarRule
from repro.schema.parser import ParseNode

CustomAction = Callable[[ParseNode, Sequence[tuple[str, Value]]], Value]


def natural_value(
    node: ParseNode,
    child_values: Sequence[tuple[str, Value]],
    *,
    classes: frozenset[str],
    list_valued: frozenset[str],
) -> Value:
    """Apply the natural action for ``node``'s rule."""
    rule = node.rule
    if isinstance(rule, StarRule):
        elements = [value for _, value in child_values]
        if rule.lhs in list_valued:
            return ListValue(elements)
        return SetValue(elements)
    if isinstance(rule, SeqRule):
        # Passthrough is decided by the *rule's* capture arity, not by how
        # many children survived push-down pruning: a two-field tuple pruned
        # to one field must stay a tuple.
        rule_captures = [item for item in rule.items if not _is_literal(item)]
        if len(rule_captures) == 1 and rule.lhs not in classes:
            if not child_values:
                raise GrammarError(
                    f"rule for {rule.lhs!r}: its single capture was pruned away"
                )
            value = child_values[0][1]
            if isinstance(value, AtomicValue) and not value.type_name:
                # Tag a fresh terminal capture with the innermost named
                # non-terminal, so paths can address atomic set elements
                # (``r.Keywords.Keyword``).
                return AtomicValue(text=value.text, type_name=rule.lhs)
            return value
        if not rule_captures:
            raise GrammarError(
                f"rule for {rule.lhs!r} captures nothing; a natural schema "
                "cannot assign it a value"
            )
        attributes = {}
        for symbol, value in child_values:
            if symbol.startswith("#"):
                raise GrammarError(
                    f"rule for {rule.lhs!r} mixes a bare terminal with other "
                    "captures; name intermediate non-terminals instead "
                    "(natural schemas take attribute names from non-terminals)"
                )
            attributes[symbol] = value
        if rule.lhs in classes:
            return ObjectValue(class_name=rule.lhs, attributes=attributes)
        return TupleValue(type_name=rule.lhs, attributes=attributes)
    raise GrammarError(f"node {node.symbol!r} has no rule to act on")


def terminal_value(node: ParseNode) -> AtomicValue:
    """The value of a terminal capture."""
    assert node.text is not None
    return AtomicValue(node.text)


def is_passthrough_rule(rule: object) -> bool:
    """Does this rule's natural action pass a single child value through?

    Such non-terminals are *transparent* to attribute paths: their name never
    appears as an attribute in the database image.
    """
    if not isinstance(rule, SeqRule):
        return False
    capturing = [item for item in rule.items if not _is_literal(item)]
    return len(capturing) == 1


def _is_literal(item: object) -> bool:
    from repro.schema.grammar import Literal

    return isinstance(item, Literal)
