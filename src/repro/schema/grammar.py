"""The grammar formalism of structuring schemas.

A grammar is an ordered list of rules over a vocabulary of symbols:

- :class:`NonTerminal` — a reference to another rule's left-hand side;
- :class:`Literal` — fixed text that must appear (delimiters, keywords);
- terminal classes that *capture* text:
  :class:`TWord` (a maximal run of word characters),
  :class:`TQuoted` (a quoted string; captures the inner text),
  :class:`TUntil` (raw text up to a stop string),
  :class:`TNumber` (a run of digits).

Rules come in two shapes, mirroring the paper's notation:

- :class:`SeqRule` — ``A -> X1 X2 ... Xn`` (several SeqRules with the same
  left-hand side are ordered alternatives, tried PEG-style);
- :class:`StarRule` — ``A -> B*`` with an optional separator literal,
  written in the paper as ``A -> B* {$$ := ∪ $i}``.

Footnote 4 of the paper requires every non-terminal name to appear at most
once on the right-hand side of a rule (attribute names are non-terminal
names); :meth:`Grammar.validate` enforces this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Union

from repro.errors import GrammarError


@dataclass(frozen=True)
class NonTerminal:
    """A reference to a non-terminal."""

    name: str


@dataclass(frozen=True)
class Literal:
    """Fixed text; matched exactly, captures nothing."""

    text: str

    def __post_init__(self) -> None:
        if not self.text:
            raise GrammarError("literal text must be non-empty")


@dataclass(frozen=True)
class TWord:
    """A maximal run of word characters (alphanumerics plus ``extra``)."""

    extra: str = ".-'"
    capture: str = "word"


@dataclass(frozen=True)
class TQuoted:
    """A quoted string; the captured value and region are the inner text."""

    quote: str = '"'
    capture: str = "string"


@dataclass(frozen=True)
class TUntil:
    """Raw text up to (not including) the earliest ``stop`` string; the
    captured value is whitespace-stripped.

    ``stop`` may be one string or a tuple of alternatives.  ``allow_empty``
    permits zero-length captures (an empty field)."""

    stop: str | tuple[str, ...]
    allow_empty: bool = False
    capture: str = "text"

    @property
    def stops(self) -> tuple[str, ...]:
        return (self.stop,) if isinstance(self.stop, str) else self.stop


@dataclass(frozen=True)
class TNumber:
    """A run of ASCII digits."""

    capture: str = "number"


Terminal = Union[TWord, TQuoted, TUntil, TNumber]
Symbol = Union[NonTerminal, Literal, TWord, TQuoted, TUntil, TNumber]


def is_capturing(symbol: Symbol) -> bool:
    """Does this symbol produce a database value?"""
    return not isinstance(symbol, Literal)


@dataclass(frozen=True)
class SeqRule:
    """``lhs -> items`` (a sequence of symbols)."""

    lhs: str
    items: tuple[Symbol, ...]

    def __init__(self, lhs: str, items: Iterable[Symbol]) -> None:
        object.__setattr__(self, "lhs", lhs)
        object.__setattr__(self, "items", tuple(items))

    def nonterminal_names(self) -> list[str]:
        return [item.name for item in self.items if isinstance(item, NonTerminal)]


@dataclass(frozen=True)
class StarRule:
    """``lhs -> item*`` with an optional separator literal.

    ``min_count`` is the minimum number of repetitions (0 for ``*``, 1 for
    ``+``)."""

    lhs: str
    item: NonTerminal
    separator: Literal | None = None
    min_count: int = 0

    def nonterminal_names(self) -> list[str]:
        return [self.item.name]


Rule = Union[SeqRule, StarRule]


class Grammar:
    """An ordered collection of rules plus a start symbol.

    Multiple rules with the same left-hand side are *ordered alternatives*;
    the parser tries them in declaration order and commits to the first that
    succeeds (PEG semantics) — adequate for the near-deterministic grammars
    structuring schemas use.
    """

    def __init__(self, rules: Iterable[Rule], start: str) -> None:
        self._rules: tuple[Rule, ...] = tuple(rules)
        self.start = start
        self._by_lhs: dict[str, list[Rule]] = {}
        for rule in self._rules:
            self._by_lhs.setdefault(rule.lhs, []).append(rule)
        self.validate()

    # -- validation -----------------------------------------------------------

    def validate(self) -> None:
        if self.start not in self._by_lhs:
            raise GrammarError(f"start symbol {self.start!r} has no rules")
        for rule in self._rules:
            for referenced in rule.nonterminal_names():
                if referenced not in self._by_lhs:
                    raise GrammarError(
                        f"rule for {rule.lhs!r} references undefined non-terminal "
                        f"{referenced!r}"
                    )
            if isinstance(rule, SeqRule):
                names = rule.nonterminal_names()
                duplicates = {name for name in names if names.count(name) > 1}
                if duplicates:
                    raise GrammarError(
                        f"rule for {rule.lhs!r} uses non-terminal(s) "
                        f"{sorted(duplicates)} more than once on the right-hand "
                        "side (paper, footnote 4)"
                    )
                if not rule.items:
                    raise GrammarError(f"rule for {rule.lhs!r} has an empty right-hand side")

    # -- accessors ------------------------------------------------------------

    @property
    def rules(self) -> tuple[Rule, ...]:
        return self._rules

    def rules_for(self, nonterminal: str) -> list[Rule]:
        try:
            return self._by_lhs[nonterminal]
        except KeyError:
            raise GrammarError(f"no rules for non-terminal {nonterminal!r}") from None

    @property
    def nonterminals(self) -> tuple[str, ...]:
        return tuple(self._by_lhs)

    def __contains__(self, nonterminal: str) -> bool:
        return nonterminal in self._by_lhs

    def iter_edges(self) -> Iterator[tuple[str, str]]:
        """Yield ``(lhs, rhs-non-terminal)`` pairs across all rules — the raw
        material of the full-indexing RIG (Section 4.2)."""
        for rule in self._rules:
            for name in rule.nonterminal_names():
                yield rule.lhs, name

    def is_set_valued(self, nonterminal: str) -> bool:
        """Is every rule for this non-terminal a star rule?"""
        rules = self.rules_for(nonterminal)
        return all(isinstance(rule, StarRule) for rule in rules)

    def coincidence_capable_edges(self) -> Iterator[tuple[str, str]]:
        """Edges ``(A, B)`` where an ``A`` region's extent may coincide with
        its child ``B`` region's extent.

        This happens when ``B`` can be the *sole content* of ``A``: a
        sequence rule whose items are exactly one non-terminal (a unit rule),
        or a star rule with no separator (a single repetition spans the whole
        region) or whose separator only appears between items.
        """
        for rule in self._rules:
            if isinstance(rule, StarRule):
                yield rule.lhs, rule.item.name
            elif isinstance(rule, SeqRule):
                if len(rule.items) == 1 and isinstance(rule.items[0], NonTerminal):
                    yield rule.lhs, rule.items[0].name
