"""Region-capturing recursive-descent parser.

This is the Yacc stand-in of the reproduction.  Beyond ordinary parsing, it
does the two extra things the paper needs:

1. every non-terminal occurrence records its region — the half-open span of
   text it derives — because those spans *are* the entries of the region
   indexes (Section 4.2: "each index Ai is instantiated by the set of all
   regions corresponding to occurrences of Ai in the parse tree of the
   file");
2. it can parse an arbitrary *slice* of the file starting at any
   non-terminal, which is how candidate regions are filtered under partial
   indexing (Section 6.2: "we parse the regions in the superset").

The parser is PEG-style: ordered alternatives with backtracking, whitespace
skipped before every symbol.  Grammars used by structuring schemas are
near-deterministic, so backtracking is shallow in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.algebra.counters import OperationCounters
from repro.errors import ParseError
from repro.schema.grammar import (
    Grammar,
    Literal,
    NonTerminal,
    Rule,
    SeqRule,
    StarRule,
    Symbol,
    TNumber,
    TQuoted,
    TUntil,
    TWord,
)

_WHITESPACE = " \t\r\n"


@dataclass(frozen=True)
class ParseNode:
    """A node of the parse tree.

    ``symbol`` is the non-terminal name for inner nodes, or ``"#word"`` /
    ``"#string"`` / ``"#text"`` / ``"#number"`` for terminal captures.
    ``start``/``end`` is the node's region (half-open offsets into the parsed
    text).  ``text`` is the captured value for terminal nodes, ``None``
    otherwise.  ``rule`` records which grammar rule produced an inner node
    (actions dispatch on it).
    """

    symbol: str
    start: int
    end: int
    children: tuple["ParseNode", ...] = ()
    text: str | None = None
    rule: Rule | None = None

    @property
    def is_terminal(self) -> bool:
        return self.symbol.startswith("#")

    def walk(self) -> Iterator["ParseNode"]:
        """Pre-order traversal."""
        yield self
        for child in self.children:
            yield from child.walk()

    def nonterminal_spans(self) -> Iterator[tuple[str, int, int]]:
        """Yield ``(non-terminal, start, end)`` for every inner node — the
        raw region-index entries."""
        for node in self.walk():
            if not node.is_terminal:
                yield node.symbol, node.start, node.end

    def child_map(self) -> dict[str, "ParseNode"]:
        """Map each non-terminal child's symbol to its node (valid because
        footnote 4 forbids repeated non-terminals in one rule)."""
        return {child.symbol: child for child in self.children if not child.is_terminal}


class Parser:
    """Parse text (or a slice of it) according to a grammar."""

    def __init__(self, grammar: Grammar) -> None:
        self._grammar = grammar

    @property
    def grammar(self) -> Grammar:
        return self._grammar

    def parse(
        self,
        text: str,
        symbol: str | None = None,
        start: int = 0,
        end: int | None = None,
        require_all: bool = True,
        counters: OperationCounters | None = None,
    ) -> ParseNode:
        """Parse ``text[start:end]`` as non-terminal ``symbol``.

        Parameters
        ----------
        symbol:
            The non-terminal to parse; defaults to the grammar's start symbol.
        start, end:
            The slice of ``text`` to parse (offsets in the returned tree are
            absolute, so region indexes line up with the corpus text).
        require_all:
            When true, raise :class:`ParseError` unless the whole slice
            (minus trailing whitespace) is consumed.
        counters:
            Optional tally; the number of characters scanned is added to
            ``bytes_scanned`` — this is what makes "how much of the file did
            we touch" measurable in the benchmarks.
        """
        target = symbol if symbol is not None else self._grammar.start
        state = _State(text=text, limit=end if end is not None else len(text))
        node = self._parse_nonterminal(state, target, start)
        if node is None:
            raise ParseError(
                f"cannot parse as <{target}>; furthest failure expecting "
                f"{state.expected!r}",
                position=state.furthest,
                symbol=target,
            )
        position = self._skip_whitespace(state, node.end)
        if require_all and position < state.limit:
            raise ParseError(
                f"trailing input after <{target}>: "
                f"{text[position:position + 30]!r}",
                position=position,
                symbol=target,
            )
        if counters is not None:
            counters.scan(node.end - start)
        return node

    # -- internals -------------------------------------------------------------

    def _skip_whitespace(self, state: "_State", position: int) -> int:
        text, limit = state.text, state.limit
        while position < limit and text[position] in _WHITESPACE:
            position += 1
        return position

    def _parse_nonterminal(self, state: "_State", name: str, position: int) -> ParseNode | None:
        for rule in self._grammar.rules_for(name):
            node = self._parse_rule(state, rule, position)
            if node is not None:
                return node
        return None

    def _parse_rule(self, state: "_State", rule: Rule, position: int) -> ParseNode | None:
        if isinstance(rule, SeqRule):
            return self._parse_sequence(state, rule, position)
        return self._parse_star(state, rule, position)

    def _parse_sequence(self, state: "_State", rule: SeqRule, position: int) -> ParseNode | None:
        start = self._skip_whitespace(state, position)
        children: list[ParseNode] = []
        cursor = start
        content_end = start
        for item in rule.items:
            result = self._parse_symbol(state, item, cursor)
            if result is None:
                return None
            node, cursor = result
            if node is not None:
                children.append(node)
            content_end = cursor
        return ParseNode(
            symbol=rule.lhs,
            start=start,
            end=content_end,
            children=tuple(children),
            rule=rule,
        )

    def _parse_star(self, state: "_State", rule: StarRule, position: int) -> ParseNode | None:
        start = self._skip_whitespace(state, position)
        children: list[ParseNode] = []
        cursor = start
        content_end = start
        while True:
            attempt_from = cursor
            if children and rule.separator is not None:
                after_sep = self._match_literal(state, rule.separator, cursor)
                if after_sep is None:
                    break
                attempt_from = after_sep
            child = self._parse_nonterminal(state, rule.item.name, attempt_from)
            if child is None:
                break
            children.append(child)
            cursor = child.end
            content_end = child.end
        if len(children) < rule.min_count:
            return None
        return ParseNode(
            symbol=rule.lhs,
            start=start if children else start,
            end=content_end if children else start,
            children=tuple(children),
            rule=rule,
        )

    def _parse_symbol(
        self, state: "_State", symbol: Symbol, position: int
    ) -> tuple[ParseNode | None, int] | None:
        """Parse one rule item.  Returns ``(node_or_None, new_position)`` on
        success (literals produce no node), or ``None`` on failure."""
        if isinstance(symbol, NonTerminal):
            node = self._parse_nonterminal(state, symbol.name, position)
            if node is None:
                return None
            return node, node.end
        if isinstance(symbol, Literal):
            after = self._match_literal(state, symbol, position)
            if after is None:
                return None
            return None, after
        return self._parse_terminal(state, symbol, position)

    def _match_literal(self, state: "_State", literal: Literal, position: int) -> int | None:
        position = self._skip_whitespace(state, position)
        end = position + len(literal.text)
        if end <= state.limit and state.text.startswith(literal.text, position):
            return end
        state.note_failure(position, literal.text)
        return None

    def _parse_terminal(
        self, state: "_State", symbol: Symbol, position: int
    ) -> tuple[ParseNode, int] | None:
        text, limit = state.text, state.limit
        position = self._skip_whitespace(state, position)

        if isinstance(symbol, TWord):
            cursor = position
            while cursor < limit and (text[cursor].isalnum() or text[cursor] in symbol.extra):
                cursor += 1
            if cursor == position:
                state.note_failure(position, "<word>")
                return None
            node = ParseNode("#word", position, cursor, text=text[position:cursor])
            return node, cursor

        if isinstance(symbol, TNumber):
            cursor = position
            while cursor < limit and text[cursor].isdigit():
                cursor += 1
            if cursor == position:
                state.note_failure(position, "<number>")
                return None
            node = ParseNode("#number", position, cursor, text=text[position:cursor])
            return node, cursor

        if isinstance(symbol, TQuoted):
            if position >= limit or text[position] != symbol.quote:
                state.note_failure(position, symbol.quote)
                return None
            closing = text.find(symbol.quote, position + 1, limit)
            if closing < 0:
                state.note_failure(position, f"closing {symbol.quote}")
                return None
            inner_start, inner_end = position + 1, closing
            node = ParseNode("#string", inner_start, inner_end, text=text[inner_start:inner_end])
            return node, closing + 1

        if isinstance(symbol, TUntil):
            raw_end = limit
            for stop in symbol.stops:
                stop_at = text.find(stop, position, limit)
                if 0 <= stop_at < raw_end:
                    raw_end = stop_at
            captured_start, captured_end = position, raw_end
            while captured_start < captured_end and text[captured_start] in _WHITESPACE:
                captured_start += 1
            while captured_end > captured_start and text[captured_end - 1] in _WHITESPACE:
                captured_end -= 1
            if captured_end == captured_start and not symbol.allow_empty:
                state.note_failure(position, f"text before {symbol.stop!r}")
                return None
            node = ParseNode(
                "#text", captured_start, captured_end, text=text[captured_start:captured_end]
            )
            return node, raw_end

        raise ParseError(f"unknown symbol {symbol!r}", position=position)


class _State:
    """Shared mutable parse state: the text, the slice limit, and the
    furthest-failure diagnostics."""

    __slots__ = ("text", "limit", "furthest", "expected")

    def __init__(self, text: str, limit: int) -> None:
        self.text = text
        self.limit = limit
        self.furthest = 0
        self.expected = ""

    def note_failure(self, position: int, expected: str) -> None:
        if position >= self.furthest:
            self.furthest = position
            self.expected = expected
