"""Query push-down into instantiation ([ACM93], Sections 4.1 and 6.2).

"The structuring schema can be optimized by 'pushing' the query into the
parsing process, so that only objects that meet the query selection criteria
are built.  Parsing using an optimized schema reduces the construction of
unnecessary database objects."

We realise this with a :class:`PathTrie`: the set of attribute paths a query
actually touches, as a prefix tree.  Instantiation walks the parse tree and
builds database values only along trie branches; everything else is skipped.
The number of values built is reported, so benchmarks can show the
construction savings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class PathTrie:
    """A prefix tree of attribute paths.

    ``all_below`` means the whole subtree is needed (produced by ``*X`` path
    variables and by output paths that select entire objects).
    """

    children: dict[str, "PathTrie"] = field(default_factory=dict)
    all_below: bool = False

    @classmethod
    def everything(cls) -> "PathTrie":
        return cls(all_below=True)

    @classmethod
    def from_paths(cls, paths: Iterable[Sequence[str | None]]) -> "PathTrie":
        """Build from attribute paths.  ``None`` inside a path means "any
        attributes from here on" (a ``*X`` variable): the subtree is marked
        fully needed."""
        root = cls()
        for path in paths:
            node = root
            for step in path:
                if step is None:
                    node.all_below = True
                    break
                node = node.children.setdefault(step, cls())
            else:
                # A path ending at a value needs that whole value.
                node.all_below = True
        return root

    def child(self, attribute: str) -> "PathTrie | None":
        """The trie below ``attribute``; ``None`` when the attribute is not
        needed.  A fully-needed trie returns itself for any attribute."""
        if self.all_below:
            return _EVERYTHING
        return self.children.get(attribute)

    def wants(self, attribute: str) -> bool:
        return self.all_below or attribute in self.children

    @property
    def is_empty(self) -> bool:
        return not self.all_below and not self.children

    def fingerprint(self) -> tuple:
        """A canonical hashable key for the set of paths this trie keeps.

        Two queries touching the same attribute paths fingerprint equally,
        so candidate parses can be shared between them (the parse memo keys
        on this).  A fully-needed subtree normalises to ``(True,)`` — its
        children are irrelevant, ``child()`` ignores them.
        """
        if self.all_below:
            return (True,)
        return (
            False,
            tuple(
                (attribute, child.fingerprint())
                for attribute, child in sorted(self.children.items())
            ),
        )


_EVERYTHING = PathTrie(all_below=True)


@dataclass
class AnchoredTrie:
    """A trie that applies ``inner`` from the first occurrence of
    ``anchor`` downwards, and keeps everything above/outside it.

    Used by the full-scan pipeline: the query's path trie is rooted at the
    source *class*, but instantiation starts at the grammar root — documents
    wrap their references in outer structure that must be kept.
    """

    anchor: str
    inner: PathTrie
    all_below: bool = False

    def child(self, attribute: str) -> "PathTrie | AnchoredTrie":
        if attribute == self.anchor:
            return self.inner
        return self

    def wants(self, attribute: str) -> bool:
        return True


@dataclass
class InstantiationStats:
    """How much database material instantiation actually built."""

    values_built: int = 0
    values_skipped: int = 0
    nodes_visited: int = 0


def instantiate(schema, node, needed: PathTrie | None = None, stats: InstantiationStats | None = None):
    """Build the database value for a parse node, restricted to ``needed``.

    Thin wrapper over :meth:`StructuringSchema.instantiate` kept here so the
    push-down machinery has a single import point.
    """
    return schema.instantiate(node, needed=needed, stats=stats)
