"""Database type descriptions for structuring schemas.

These mirror the first two parts of the paper's structuring-schema example
(Section 4.1): the class/type definitions and the non-terminal type
annotations.  They are *descriptions* — the values themselves live in
:mod:`repro.db.values`.  :meth:`repro.schema.structuring.StructuringSchema.describe_types`
derives them automatically for natural schemas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Union


@dataclass(frozen=True)
class AtomicTypeDesc:
    """An atomic type (``string`` in all the paper's examples)."""

    name: str = "string"

    def render(self) -> str:
        return self.name


@dataclass(frozen=True)
class SetTypeDesc:
    """``set(Element)``."""

    element: str

    def render(self) -> str:
        return f"set({self.element})"


@dataclass(frozen=True)
class ListTypeDesc:
    """``list(Element)``."""

    element: str

    def render(self) -> str:
        return f"list({self.element})"


@dataclass(frozen=True)
class TupleTypeDesc:
    """``tuple(field: Type, ...)`` — no object identity."""

    name: str
    fields: Mapping[str, str]

    def render(self) -> str:
        inner = ", ".join(f"{field} : {type_name}" for field, type_name in self.fields.items())
        return f"tuple({inner})"


@dataclass(frozen=True)
class ClassTypeDesc:
    """A class: a named tuple type with object identity."""

    name: str
    fields: Mapping[str, str]

    def render(self) -> str:
        inner = ", ".join(f"{field} : {type_name}" for field, type_name in self.fields.items())
        return f"Class {self.name} = tuple({inner})"


TypeDesc = Union[AtomicTypeDesc, SetTypeDesc, ListTypeDesc, TupleTypeDesc, ClassTypeDesc]
