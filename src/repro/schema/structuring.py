"""The :class:`StructuringSchema` façade.

A structuring schema bundles a grammar with its database annotations
(Section 4.1) and provides:

- parsing a file (or a file region) into a parse tree;
- instantiating parse trees into database values, optionally restricted by a
  :class:`~repro.schema.pushdown.PathTrie` (query push-down);
- describing the derived database schema (classes / types), reproducing the
  paper's example annotation listing;
- the *transparency* analysis used by query translation: non-terminals whose
  natural action passes a value through never appear as attribute names.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.algebra.counters import OperationCounters
from repro.db.values import ObjectValue, Value
from repro.errors import GrammarError
from repro.schema.actions import (
    CustomAction,
    is_passthrough_rule,
    natural_value,
    terminal_value,
)
from repro.schema.grammar import (
    Grammar,
    NonTerminal,
    StarRule,
    is_capturing,
)
from repro.schema.parser import ParseNode, Parser
from repro.schema.pushdown import InstantiationStats, PathTrie
from repro.schema.types import (
    AtomicTypeDesc,
    ClassTypeDesc,
    ListTypeDesc,
    SetTypeDesc,
    TupleTypeDesc,
    TypeDesc,
)


@dataclass(frozen=True)
class DatabaseImage:
    """The result of mapping a file into the database: the root value plus
    the parse tree it came from (whose spans feed the region indexes)."""

    root: Value
    tree: ParseNode


class StructuringSchema:
    """A grammar annotated with database programs.

    Parameters
    ----------
    grammar:
        The file grammar.
    classes:
        Non-terminals represented as classes (objects with identity) rather
        than tuple values — e.g. ``{"Reference"}`` for BibTeX.
    list_valued:
        Star non-terminals represented as lists instead of sets.
    actions:
        Optional custom actions per non-terminal, overriding the natural
        ones (for non-natural schemas).
    name:
        A label for diagnostics.
    """

    def __init__(
        self,
        grammar: Grammar,
        classes: Iterable[str] = (),
        list_valued: Iterable[str] = (),
        actions: Mapping[str, CustomAction] | None = None,
        name: str = "",
    ) -> None:
        self.grammar = grammar
        self.classes = frozenset(classes)
        self.list_valued = frozenset(list_valued)
        self.custom_actions = dict(actions or {})
        self.name = name or grammar.start
        unknown = (self.classes | self.list_valued | set(self.custom_actions)) - set(
            grammar.nonterminals
        )
        if unknown:
            raise GrammarError(f"schema annotates unknown non-terminals: {sorted(unknown)}")
        self._parser = Parser(grammar)

    # -- parsing ----------------------------------------------------------------

    @property
    def parser(self) -> Parser:
        return self._parser

    def parse(
        self,
        text: str,
        symbol: str | None = None,
        start: int = 0,
        end: int | None = None,
        counters: OperationCounters | None = None,
    ) -> ParseNode:
        """Parse ``text[start:end]`` as ``symbol`` (default: the start symbol)."""
        return self._parser.parse(text, symbol=symbol, start=start, end=end, counters=counters)

    def database_image(
        self, text: str, counters: OperationCounters | None = None
    ) -> DatabaseImage:
        """Parse the whole text and build its full database value — the
        paper's unoptimized baseline pipeline."""
        tree = self.parse(text, counters=counters)
        return DatabaseImage(root=self.instantiate(tree), tree=tree)

    # -- instantiation ------------------------------------------------------------

    def instantiate(
        self,
        node: ParseNode,
        needed: PathTrie | None = None,
        stats: InstantiationStats | None = None,
        spans: dict[int, tuple[int, int]] | None = None,
    ) -> Value:
        """Build the database value of ``node``.

        ``needed`` restricts construction to the attribute paths a query
        touches ([ACM93] push-down); ``None`` builds everything.  When
        ``spans`` is given, every object's source span is recorded into it
        (``oid -> (start, end)``) as the object is built — callers that map
        answers back to file regions use this instead of assuming any
        correspondence between traversal orders.
        """
        trie = needed if needed is not None else PathTrie.everything()
        return self._instantiate(node, trie, stats, spans)

    def _instantiate(
        self,
        node: ParseNode,
        needed: PathTrie,
        stats: InstantiationStats | None,
        spans: dict[int, tuple[int, int]] | None = None,
    ) -> Value:
        if stats is not None:
            stats.nodes_visited += 1
        if node.is_terminal:
            if stats is not None:
                stats.values_built += 1
            return terminal_value(node)
        child_values: list[tuple[str, Value]] = []
        passthrough = self._node_is_passthrough(node)
        for child in node.children:
            if child.is_terminal:
                step_name = child.symbol
            else:
                step_name = self._step_name(child)
            if passthrough:
                child_needed = needed  # transparent: same trie applies below
            elif child.is_terminal:
                child_needed = PathTrie.everything()
            else:
                branch = needed.child(step_name)
                if branch is None:
                    if stats is not None:
                        stats.values_skipped += 1
                    continue
                child_needed = branch
            child_values.append(
                (step_name, self._instantiate(child, child_needed, stats, spans))
            )
        value = self._apply_action(node, child_values)
        if (
            spans is not None
            and isinstance(value, ObjectValue)
            and value.class_name == node.symbol
        ):
            # Record at the node that *created* the object (passthrough
            # wrappers return a child's object under a different symbol and
            # must not widen its span).
            spans[value.oid] = (node.start, node.end)
        if stats is not None:
            stats.values_built += 1
        return value

    def _apply_action(self, node: ParseNode, child_values: list[tuple[str, Value]]) -> Value:
        custom = self.custom_actions.get(node.symbol)
        if custom is not None:
            return custom(node, child_values)
        return natural_value(
            node, child_values, classes=self.classes, list_valued=self.list_valued
        )

    # -- structural analyses -------------------------------------------------------

    def is_transparent(self, nonterminal: str) -> bool:
        """Is this non-terminal invisible in attribute paths?

        True when *every* rule for it passes one non-terminal child's value
        through and it is neither a class nor custom-acted.  Attribute
        paths, push-down tries, and region selections then address the
        inner name(s): a ``Title -> "<t>" TitleText "</t>"`` wrapper exposes
        the attribute ``TitleText`` whose region is the trimmed inner text —
        which is also the right region for exact word selections.  A
        disjunctive wrapper ``Stmt -> Call | Assign | If`` (footnote 5's
        disjunctive types) is transparent too: paths address ``Call`` /
        ``Assign`` / ``If`` directly.  (``Key -> string`` is a passthrough
        but terminal-backed, so ``Key`` itself is the innermost name and
        stays visible.)
        """
        if nonterminal in self.classes or nonterminal in self.custom_actions:
            return False
        rules = self.grammar.rules_for(nonterminal)
        for rule in rules:
            if not is_passthrough_rule(rule):
                return False
            capturing = [item for item in rule.items if is_capturing(item)]  # type: ignore[union-attr]
            if not isinstance(capturing[0], NonTerminal):
                return False
        return True

    def _node_is_passthrough(self, node: ParseNode) -> bool:
        """Does *this parse node's* matched rule pass one non-terminal
        child's value through?  (Per-node variant of transparency: for a
        disjunctive wrapper each node matched exactly one alternative.)"""
        if node.symbol in self.classes or node.symbol in self.custom_actions:
            return False
        rule = node.rule
        if not is_passthrough_rule(rule):
            return False
        capturing = [item for item in rule.items if is_capturing(item)]  # type: ignore[union-attr]
        return isinstance(capturing[0], NonTerminal)

    def _step_name(self, node: ParseNode) -> str:
        """The attribute/type name a child node exposes: follow passthrough
        wrappers down to the innermost visible node."""
        current = node
        while not current.is_terminal and self._node_is_passthrough(current):
            inner = [child for child in current.children if not child.is_terminal]
            if len(inner) != 1:
                break
            current = inner[0]
        return current.symbol

    def resolved_name(self, nonterminal: str) -> str:
        """Follow transparent unit rules down to the innermost visible name."""
        seen = {nonterminal}
        current = nonterminal
        while self.is_transparent(current):
            rule = self.grammar.rules_for(current)[0]
            capturing = [item for item in rule.items if is_capturing(item)]
            current = capturing[0].name  # type: ignore[union-attr]
            if current in seen:
                break
            seen.add(current)
        return current

    def transparent_nonterminals(self) -> frozenset[str]:
        return frozenset(
            nonterminal
            for nonterminal in self.grammar.nonterminals
            if self.is_transparent(nonterminal)
        )

    # -- schema description (the paper's annotation listing) -----------------------

    def describe_types(self) -> dict[str, TypeDesc]:
        """Derive the type of each non-terminal (Section 4.1's second part)."""
        described: dict[str, TypeDesc] = {}
        for nonterminal in self.grammar.nonterminals:
            described[nonterminal] = self._type_of(nonterminal, frozenset())
        return described

    def _type_of(self, nonterminal: str, visiting: frozenset[str]) -> TypeDesc:
        if nonterminal in visiting:
            # Recursive type (e.g. self-nested sections): stop at the name.
            return TupleTypeDesc(name=nonterminal, fields={})
        visiting = visiting | {nonterminal}
        rules = self.grammar.rules_for(nonterminal)
        first = rules[0]
        if isinstance(first, StarRule):
            element = self._value_type_name(first.item.name, visiting)
            if nonterminal in self.list_valued:
                return ListTypeDesc(element=element)
            return SetTypeDesc(element=element)
        capturing = [item for item in first.items if is_capturing(item)]
        if len(capturing) == 1 and nonterminal not in self.classes:
            item = capturing[0]
            if isinstance(item, NonTerminal):
                return self._type_of(item.name, visiting)
            return AtomicTypeDesc()
        fields = {
            item.name: self._value_type_name(item.name, visiting)
            for item in capturing
            if isinstance(item, NonTerminal)
        }
        if nonterminal in self.classes:
            return ClassTypeDesc(name=nonterminal, fields=fields)
        return TupleTypeDesc(name=nonterminal, fields=fields)

    def _value_type_name(self, nonterminal: str, visiting: frozenset[str]) -> str:
        """A shallow type name for use inside field listings."""
        if nonterminal in visiting:
            return nonterminal
        described = self._type_of(nonterminal, visiting)
        if isinstance(described, AtomicTypeDesc):
            return "string"
        if isinstance(described, (SetTypeDesc, ListTypeDesc)):
            return described.render()
        return getattr(described, "name", "string")

    def describe(self) -> str:
        """Render the schema the way the paper lists it (classes and types)."""
        lines = [f"/* structuring schema {self.name} */"]
        for nonterminal, described in sorted(self.describe_types().items()):
            if isinstance(described, ClassTypeDesc):
                lines.append(described.render())
        for nonterminal, described in sorted(self.describe_types().items()):
            lines.append(f"Type ({nonterminal}) = {described.render()}")
        return "\n".join(lines)
