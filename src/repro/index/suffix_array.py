"""PAT-style semi-infinite string (sistring) array.

The PAT system indexes the suffixes of the text that begin at word starts
("sistrings") in a Patricia tree; prefix search then finds every text
position where a given string begins a word.  A sorted suffix array over the
same positions supports the identical query with two binary searches.

Keys are compared up to ``key_length`` characters — ample for query strings,
which are words or short phrases; queries longer than ``key_length`` are
rejected rather than answered wrongly.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.algebra.region import Region, RegionSet
from repro.errors import RegionIndexError
from repro.text.tokenizer import tokenize


class SuffixArray:
    """A sorted array of sistring positions supporting prefix search."""

    def __init__(
        self,
        text: str,
        positions: Iterable[int] | None = None,
        key_length: int = 64,
    ) -> None:
        if key_length <= 0:
            raise RegionIndexError("key_length must be positive")
        self._text = text
        self._key_length = key_length
        if positions is None:
            starts: Sequence[int] = [token.start for token in tokenize(text)]
        else:
            starts = sorted(set(positions))
        self._array = sorted(starts, key=lambda p: text[p : p + key_length])

    @property
    def key_length(self) -> int:
        return self._key_length

    def __len__(self) -> int:
        return len(self._array)

    # -- search --------------------------------------------------------------------

    def _lower_bound(self, prefix: str) -> int:
        low, high = 0, len(self._array)
        while low < high:
            mid = (low + high) // 2
            position = self._array[mid]
            if self._text[position : position + len(prefix)] < prefix:
                low = mid + 1
            else:
                high = mid
        return low

    def _upper_bound(self, prefix: str) -> int:
        low, high = 0, len(self._array)
        while low < high:
            mid = (low + high) // 2
            position = self._array[mid]
            if self._text[position : position + len(prefix)] <= prefix:
                low = mid + 1
            else:
                high = mid
        return low

    def _validate(self, prefix: str) -> None:
        if not prefix:
            raise RegionIndexError("empty search prefix")
        if len(prefix) > self._key_length:
            raise RegionIndexError(
                f"prefix of length {len(prefix)} exceeds the index key length "
                f"{self._key_length}"
            )

    def find(self, prefix: str) -> RegionSet:
        """All positions where ``prefix`` begins a sistring, as
        ``len(prefix)``-wide regions — O(log n + occurrences) via the two
        binary searches."""
        self._validate(prefix)
        low = self._lower_bound(prefix)
        high = self._upper_bound(prefix)
        return RegionSet(
            Region(position, position + len(prefix)) for position in self._array[low:high]
        )

    def count(self, prefix: str) -> int:
        """How many sistrings begin with ``prefix`` (PAT frequency search).

        O(log n): the two binary searches alone, no region materialisation.
        """
        self._validate(prefix)
        return self._upper_bound(prefix) - self._lower_bound(prefix)
