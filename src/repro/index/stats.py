"""Index size accounting.

Section 7: "There is a tradeoff between performance and the number of
regions being indexed."  To make the tradeoff measurable, every index
structure reports its entry counts and an estimated byte footprint (two
4-byte offsets per region entry, one 4-byte offset per word posting — the
granularity PAT-era systems used).
"""

from __future__ import annotations

from dataclasses import dataclass, field

BYTES_PER_REGION_ENTRY = 8
BYTES_PER_WORD_POSTING = 4
BYTES_PER_SISTRING = 4


@dataclass(frozen=True)
class IndexStatistics:
    """Sizes of one engine's index structures."""

    region_entries: dict[str, int] = field(default_factory=dict)
    word_postings: int = 0
    vocabulary_size: int = 0
    sistring_count: int = 0
    text_bytes: int = 0

    @classmethod
    def measure(cls, engine) -> "IndexStatistics":
        region_entries = {
            name: len(region_set) for name, region_set in engine.instance.items()
        }
        word_postings = engine.word_index.posting_count if engine.word_index else 0
        vocabulary = engine.word_index.vocabulary_size if engine.word_index else 0
        sistrings = len(engine.suffix_array) if engine.suffix_array else 0
        return cls(
            region_entries=region_entries,
            word_postings=word_postings,
            vocabulary_size=vocabulary,
            sistring_count=sistrings,
            text_bytes=len(engine.text),
        )

    @property
    def total_region_entries(self) -> int:
        return sum(self.region_entries.values())

    @property
    def estimated_bytes(self) -> int:
        return (
            self.total_region_entries * BYTES_PER_REGION_ENTRY
            + self.word_postings * BYTES_PER_WORD_POSTING
            + self.sistring_count * BYTES_PER_SISTRING
        )

    @property
    def index_to_text_ratio(self) -> float:
        """Index footprint relative to the raw text size."""
        if not self.text_bytes:
            return 0.0
        return self.estimated_bytes / self.text_bytes

    def to_dict(self) -> dict:
        """A JSON-ready view (used by the CLI's ``--json`` stats output)."""
        return {
            "text_bytes": self.text_bytes,
            "region_entries": dict(self.region_entries),
            "total_region_entries": self.total_region_entries,
            "word_postings": self.word_postings,
            "vocabulary_size": self.vocabulary_size,
            "sistring_count": self.sistring_count,
            "estimated_bytes": self.estimated_bytes,
            "index_to_text_ratio": self.index_to_text_ratio,
        }

    def summary(self) -> str:
        lines = [
            f"text bytes:        {self.text_bytes}",
            f"region entries:    {self.total_region_entries} "
            f"(over {len(self.region_entries)} names)",
            f"word postings:     {self.word_postings} "
            f"(vocabulary {self.vocabulary_size})",
        ]
        if self.sistring_count:
            lines.append(f"sistrings:         {self.sistring_count}")
        lines.append(
            f"estimated index:   {self.estimated_bytes} bytes "
            f"({self.index_to_text_ratio:.2f}x text)"
        )
        return "\n".join(lines)
