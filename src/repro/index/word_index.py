"""Inverted word index with positions.

Records every word occurrence as a word-width region, supporting:

- ``occurrences(word)`` — the match points of a word (what selections join
  against region indexes);
- ``token_count_between(start, end)`` — how many words a span contains
  (exact-selection support: a ``Last_Name`` region *is* "Chang" iff it
  contains that occurrence and exactly one word);
- prefix lookups over the sorted vocabulary (PAT's lexical search).

A *selective* word index (Section 7: "Selective indexing can also be done
for words") only records occurrences inside a given scope region set.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator

from repro.algebra.region import Region, RegionSet
from repro.text.tokenizer import DEFAULT_EXTRA_WORD_CHARS, tokenize


class WordIndex:
    """An inverted index over one text.

    Parameters
    ----------
    text:
        The corpus text.
    lowercase:
        Fold words to lower case (queries are folded too).
    extra_word_chars:
        Extra characters counting as word characters.
    scope:
        When given, only tokens inside some scope region are indexed.
    """

    def __init__(
        self,
        text: str,
        *,
        lowercase: bool = False,
        extra_word_chars: str = DEFAULT_EXTRA_WORD_CHARS,
        scope: RegionSet | None = None,
    ) -> None:
        self._lowercase = lowercase
        postings: dict[str, list[Region]] = {}
        starts: list[int] = []
        ends: list[int] = []
        for token in tokenize(text, extra_word_chars=extra_word_chars, lowercase=lowercase):
            occurrence = Region(token.start, token.end)
            if scope is not None and not scope.any_including(occurrence):
                continue
            postings.setdefault(token.text, []).append(occurrence)
            starts.append(token.start)
            ends.append(token.end)
        self._postings: dict[str, RegionSet] = {
            word: RegionSet(entries) for word, entries in postings.items()
        }
        self._token_starts = starts
        self._token_ends = ends
        self._vocabulary = sorted(self._postings)

    # -- the evaluator's WordLookup protocol -----------------------------------

    def occurrences(self, word: str) -> RegionSet:
        """All spans where ``word`` occurs."""
        if self._lowercase:
            word = word.lower()
        return self._postings.get(word, RegionSet.empty())

    def token_count_between(self, start: int, end: int) -> int:
        """Number of word tokens whose span lies entirely in ``[start, end)``.

        Tokens never overlap, so only the last token starting in the range
        can cross its right edge.
        """
        low = bisect_left(self._token_starts, start)
        high = bisect_left(self._token_starts, end)
        count = high - low
        if count and self._token_ends[high - 1] > end:
            count -= 1
        return count

    # -- lexical (prefix) search -------------------------------------------------

    def words_with_prefix(self, prefix: str) -> Iterator[str]:
        """Vocabulary words starting with ``prefix``, in sorted order."""
        if self._lowercase:
            prefix = prefix.lower()
        index = bisect_left(self._vocabulary, prefix)
        while index < len(self._vocabulary) and self._vocabulary[index].startswith(prefix):
            yield self._vocabulary[index]
            index += 1

    def occurrences_with_prefix(self, prefix: str) -> RegionSet:
        """All occurrences of all words starting with ``prefix``."""
        merged: set[Region] = set()
        for word in self.words_with_prefix(prefix):
            merged.update(self._postings[word])
        return RegionSet(merged)

    # -- introspection -------------------------------------------------------------

    @property
    def vocabulary(self) -> tuple[str, ...]:
        return tuple(self._vocabulary)

    @property
    def vocabulary_size(self) -> int:
        return len(self._vocabulary)

    @property
    def posting_count(self) -> int:
        """Total number of indexed occurrences."""
        return len(self._token_starts)

    def frequency(self, word: str) -> int:
        if self._lowercase:
            word = word.lower()
        return len(self._postings.get(word, ()))

    def __contains__(self, word: str) -> bool:
        if self._lowercase:
            word = word.lower()
        return word in self._postings
