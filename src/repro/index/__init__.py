"""The text indexing engine (the reproduction's PAT stand-in).

The paper assumes "that this is a service given by the underlying text
indexing system"; since no such system is available here, this package
implements it:

- :mod:`repro.index.word_index` — an inverted word index with positions
  ("recording the location(s) of all the words in the file"), optionally
  *selective* (only words inside chosen region types, Section 7);
- :mod:`repro.index.suffix_array` — a PAT-style semi-infinite-string array
  over word starts, giving prefix (lexical) search;
- :mod:`repro.index.config` — declarative index configuration: full /
  partial region indexing, scoped region indexes ("index only the Name
  regions inside Authors"), selective word indexing;
- :mod:`repro.index.builder` — build region instances and engines from
  parse trees;
- :mod:`repro.index.engine` — the :class:`IndexEngine` facade: evaluates
  region expressions and implements the evaluator's word-lookup protocol;
- :mod:`repro.index.stats` — index size accounting for the
  space/efficiency tradeoff experiments.
"""

from repro.index.word_index import WordIndex
from repro.index.suffix_array import SuffixArray
from repro.index.config import IndexConfig, ScopedRegionSpec
from repro.index.builder import collect_spans, build_instance, build_engine
from repro.index.engine import IndexEngine
from repro.index.stats import IndexStatistics

__all__ = [
    "WordIndex",
    "SuffixArray",
    "IndexConfig",
    "ScopedRegionSpec",
    "collect_spans",
    "build_instance",
    "build_engine",
    "IndexEngine",
    "IndexStatistics",
]
