"""PAT-style search operations over match points (Section 3).

"PAT combines traditional text search capabilities (lexical, proximity,
contextual, boolean, see [SM83]) with some original powerful features
(position and frequency search)."  The region algebra covers boolean and
contextual search; this module supplies the rest as set-at-a-time
operations over match-point region sets:

- :func:`followed_by` / :func:`proximity` — ordered and unordered word
  proximity, producing the spanning regions of each matching pair;
- :func:`within_window` — position search: match points inside an offset
  window;
- :func:`contextual` — match points inside given regions (PAT's "within");
- :func:`frequency_in` / :func:`select_by_frequency` — frequency search:
  per-region occurrence counts, and selecting regions by a minimum count.

All operations accept an optional :class:`OperationCounters` and report
their work to it (operator symbol ``"pat:<name>"``), so PAT searches show
up in the same tallies — and therefore the same trace spans — as the
algebra operators.
"""

from __future__ import annotations

from repro.algebra.counters import OperationCounters
from repro.algebra.region import Region, RegionSet


def followed_by(
    first: RegionSet,
    second: RegionSet,
    max_gap: int = 80,
    counters: OperationCounters | None = None,
) -> RegionSet:
    """Ordered proximity: spans from a ``first`` occurrence to the nearest
    following ``second`` occurrence within ``max_gap`` characters.

    ``max_gap`` bounds the distance from the end of the first match to the
    start of the second.
    """
    if max_gap < 0:
        raise ValueError("max_gap must be non-negative")
    spans: list[Region] = []
    probes = 0
    for left in first:
        index = second.first_index_with_start_at_least(left.end)
        while index < len(second):
            probes += 1
            right = second.region_at(index)
            if right.start - left.end > max_gap:
                break
            spans.append(Region(left.start, right.end))
            index += 1
    if counters is not None:
        counters.record("pat:followed_by", comparisons=probes, produced=len(spans))
    return RegionSet(spans)


def proximity(
    first: RegionSet,
    second: RegionSet,
    max_gap: int = 80,
    counters: OperationCounters | None = None,
) -> RegionSet:
    """Unordered proximity: spans where the two occurrences appear within
    ``max_gap`` of each other, in either order."""
    result = RegionSet(
        set(followed_by(first, second, max_gap, counters=counters))
        | set(followed_by(second, first, max_gap, counters=counters))
    )
    if counters is not None:
        counters.record("pat:proximity", produced=len(result))
    return result


def within_window(
    occurrences: RegionSet,
    start: int,
    end: int,
    counters: OperationCounters | None = None,
) -> RegionSet:
    """Position search: the occurrences lying inside ``[start, end)``."""
    window = Region(start, end)
    result = RegionSet(occurrences.iter_included_in(window))
    if counters is not None:
        counters.record(
            "pat:within_window", comparisons=len(occurrences), produced=len(result)
        )
    return result


def contextual(
    occurrences: RegionSet,
    contexts: RegionSet,
    counters: OperationCounters | None = None,
) -> RegionSet:
    """PAT's ``within``: occurrences inside some context region."""
    result = RegionSet(
        occurrence for occurrence in occurrences if contexts.any_including(occurrence)
    )
    if counters is not None:
        counters.record(
            "pat:contextual", comparisons=len(occurrences), produced=len(result)
        )
    return result


def frequency_in(
    regions: RegionSet,
    occurrences: RegionSet,
    counters: OperationCounters | None = None,
) -> dict[Region, int]:
    """Frequency search: occurrence count per region (regions with zero
    occurrences are omitted)."""
    counts: dict[Region, int] = {}
    probes = 0
    for region in regions:
        count = sum(1 for _ in occurrences.iter_included_in(region))
        probes += count
        if count:
            counts[region] = count
    if counters is not None:
        counters.record("pat:frequency_in", comparisons=probes, produced=len(counts))
    return counts


def select_by_frequency(
    regions: RegionSet,
    occurrences: RegionSet,
    min_count: int = 1,
    counters: OperationCounters | None = None,
) -> RegionSet:
    """The regions containing at least ``min_count`` occurrences."""
    if min_count < 1:
        raise ValueError("min_count must be at least 1")
    kept: list[Region] = []
    probes = 0
    for region in regions:
        count = 0
        for _ in occurrences.iter_included_in(region):
            count += 1
            probes += 1
            if count >= min_count:
                kept.append(region)
                break
    if counters is not None:
        counters.record(
            "pat:select_by_frequency", comparisons=probes, produced=len(kept)
        )
    return RegionSet(kept)
