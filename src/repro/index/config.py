"""Index configuration.

Section 7 of the paper discusses *what to index*: the full set of grammar
non-terminals, a partial subset, scoped region indexes ("instead of indexing
all the Name regions it is better to index only those that reside in some
Authors region"), and selective word indexing.  :class:`IndexConfig`
declares these choices; :mod:`repro.index.builder` realises them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import IndexConfigError


@dataclass(frozen=True)
class ScopedRegionSpec:
    """A scoped region index: ``source`` regions that lie inside some
    ``scope`` region, published under ``name`` (default
    ``"source@scope"``)."""

    source: str
    scope: str
    name: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(self, "name", f"{self.source}@{self.scope}")
        if self.source == self.scope:
            raise IndexConfigError("scoped index source and scope must differ")


@dataclass(frozen=True)
class IndexConfig:
    """What the index engine should build.

    Attributes
    ----------
    region_names:
        The non-terminals to index; ``None`` means all (full indexing, minus
        the grammar root).
    scoped:
        Additional scoped region indexes.
    word_index:
        Whether to build the word index at all.
    word_scope:
        Selective word indexing: only index words inside regions of this
        non-terminal (``None`` = everywhere).
    lowercase_words:
        Case-fold the word index.
    suffix_array:
        Also build the PAT-style sistring array (prefix search).
    """

    region_names: frozenset[str] | None = None
    scoped: tuple[ScopedRegionSpec, ...] = ()
    word_index: bool = True
    word_scope: str | None = None
    lowercase_words: bool = False
    suffix_array: bool = False

    @classmethod
    def full(cls, **overrides: object) -> "IndexConfig":
        """Index every non-terminal (Section 5's setting)."""
        return cls(region_names=None, **overrides)  # type: ignore[arg-type]

    @classmethod
    def partial(cls, names: Iterable[str], **overrides: object) -> "IndexConfig":
        """Index only the given non-terminals (Section 6's setting)."""
        return cls(region_names=frozenset(names), **overrides)  # type: ignore[arg-type]

    def with_scoped(self, source: str, scope: str, name: str = "") -> "IndexConfig":
        """A copy with one more scoped region index."""
        spec = ScopedRegionSpec(source=source, scope=scope, name=name)
        return IndexConfig(
            region_names=self.region_names,
            scoped=self.scoped + (spec,),
            word_index=self.word_index,
            word_scope=self.word_scope,
            lowercase_words=self.lowercase_words,
            suffix_array=self.suffix_array,
        )

    def indexed_names(self, all_nonterminals: Iterable[str], root: str) -> frozenset[str]:
        """Resolve the concrete set of plain (unscoped) indexed names."""
        if self.region_names is None:
            return frozenset(name for name in all_nonterminals if name != root)
        available = set(all_nonterminals)
        unknown = self.region_names - available
        if unknown:
            raise IndexConfigError(
                f"configured region names not in the grammar: {sorted(unknown)}"
            )
        return self.region_names
