"""Building index structures from parse trees.

Section 4.2: "each index Ai is instantiated by the set of all regions
corresponding to occurrences of Ai in the parse tree of the file".  The
builder walks a parse tree, collects those spans, applies the index
configuration (partial sets, scoped indexes), and assembles an
:class:`~repro.index.engine.IndexEngine`.
"""

from __future__ import annotations

from collections import defaultdict

from repro.algebra.region import Instance, Region, RegionSet
from repro.errors import IndexConfigError
from repro.index.config import IndexConfig
from repro.index.engine import IndexEngine
from repro.index.suffix_array import SuffixArray
from repro.index.word_index import WordIndex
from repro.schema.parser import ParseNode


def collect_spans(tree: ParseNode) -> dict[str, list[tuple[int, int]]]:
    """All non-terminal occurrence spans, grouped by non-terminal."""
    spans: dict[str, list[tuple[int, int]]] = defaultdict(list)
    for symbol, start, end in tree.nonterminal_spans():
        spans[symbol].append((start, end))
    return dict(spans)


def build_instance(
    tree: ParseNode,
    config: IndexConfig,
    root: str,
    known_names: "tuple[str, ...] | None" = None,
) -> Instance:
    """The region instance a configuration builds for one parse tree.

    ``known_names`` lists the grammar's non-terminals; names that never
    occur in this particular tree still get (empty) indexes, so expressions
    over them evaluate to ∅ rather than failing name lookup.
    """
    spans = collect_spans(tree)
    available = set(spans.keys()) | {root} | set(known_names or ())
    indexed = config.indexed_names(available, root)
    instance = Instance()
    for name in indexed:
        instance.assign(name, RegionSet(Region(s, e) for s, e in spans.get(name, [])))
    for spec in config.scoped:
        if spec.source not in spans and spec.scope not in spans:
            # Both absent: legal (the file just has no such regions).
            instance.assign(spec.name, RegionSet.empty())
            continue
        scope_regions = RegionSet(Region(s, e) for s, e in spans.get(spec.scope, []))
        source_regions = RegionSet(Region(s, e) for s, e in spans.get(spec.source, []))
        instance.assign(
            spec.name,
            RegionSet(r for r in source_regions if scope_regions.any_including(r)),
        )
    return instance


def build_engine(
    text: str,
    tree: ParseNode,
    config: IndexConfig | None = None,
    root: str | None = None,
    known_names: tuple[str, ...] | None = None,
) -> IndexEngine:
    """Assemble a full :class:`IndexEngine` for one parsed corpus.

    ``root`` defaults to the parse tree's own symbol (excluded from full
    indexing, per the paper); ``known_names`` lists the grammar's
    non-terminals so names absent from this tree still index (empty).
    """
    config = config if config is not None else IndexConfig.full()
    root_symbol = root if root is not None else tree.symbol
    instance = build_instance(tree, config, root_symbol, known_names=known_names)

    word_index = None
    if config.word_index:
        scope = None
        if config.word_scope is not None:
            scope = instance.get(config.word_scope)
            if config.word_scope not in instance:
                spans = collect_spans(tree)
                if config.word_scope not in spans:
                    raise IndexConfigError(
                        f"word scope {config.word_scope!r} does not occur in the parse tree"
                    )
                scope = RegionSet(Region(s, e) for s, e in spans[config.word_scope])
        word_index = WordIndex(text, lowercase=config.lowercase_words, scope=scope)

    suffixes = SuffixArray(text) if config.suffix_array else None
    return IndexEngine(
        text=text,
        instance=instance,
        word_index=word_index,
        suffix_array=suffixes,
        config=config,
    )
