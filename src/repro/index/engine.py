"""The index engine facade.

Plays the role of the PAT engine: holds the indexed text, the word index and
the region instance, evaluates region expressions, and implements the
evaluator's word-lookup protocol.  All evaluation work is tallied in the
engine's counters so benchmarks can report operation counts next to wall
times.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.algebra.ast import RegionExpr, parse_expression
from repro.algebra.counters import OperationCounters
from repro.algebra.evaluator import EvalStats, Evaluator, NodeRecord
from repro.algebra.region import Instance, Region, RegionSet
from repro.cache import CacheConfig, CacheStats, RegionCache
from repro.errors import RegionIndexError
from repro.index.config import IndexConfig
from repro.index.stats import IndexStatistics
from repro.index.suffix_array import SuffixArray
from repro.index.word_index import WordIndex

if TYPE_CHECKING:  # pragma: no cover
    from repro.resilience.budget import BudgetMeter


class IndexEngine:
    """An indexed corpus: text + word index + region indexes."""

    def __init__(
        self,
        text: str,
        instance: Instance,
        word_index: WordIndex | None = None,
        suffix_array: SuffixArray | None = None,
        config: IndexConfig | None = None,
    ) -> None:
        self.text = text
        self.instance = instance
        self.word_index = word_index
        self.suffix_array = suffix_array
        self.config = config if config is not None else IndexConfig.full()
        self.counters = OperationCounters()
        # Expression-result caching is opt-in at this level (the low-level
        # engine is also a measurement instrument); FileQueryEngine turns it
        # on by default via configure_cache().
        self.cache_config: CacheConfig = CacheConfig.disabled()
        self.region_cache: RegionCache | None = None

    def configure_cache(
        self, cache_config: CacheConfig, stats: CacheStats | None = None
    ) -> None:
        """Attach (or detach) the shared region-expression result cache.

        Safe at any time: the instance is immutable, so a fresh cache is
        simply empty.  Passing ``CacheConfig.disabled()`` removes caching.
        """
        self.cache_config = cache_config
        if cache_config.caches_expressions:
            self.region_cache = RegionCache(
                max_entries=cache_config.expression_cache_size, stats=stats
            )
        else:
            self.region_cache = None

    # -- WordLookup protocol --------------------------------------------------------

    def occurrences(self, word: str) -> RegionSet:
        if self.word_index is None:
            raise RegionIndexError("this engine was built without a word index")
        return self.word_index.occurrences(word)

    def occurrences_with_prefix(self, prefix: str) -> RegionSet:
        if self.word_index is None:
            raise RegionIndexError("this engine was built without a word index")
        return self.word_index.occurrences_with_prefix(prefix)

    def token_count_between(self, start: int, end: int) -> int:
        if self.word_index is None:
            raise RegionIndexError("this engine was built without a word index")
        return self.word_index.token_count_between(start, end)

    # -- evaluation -------------------------------------------------------------------

    def evaluator(
        self,
        strict_names: bool = True,
        node_log: dict[RegionExpr, NodeRecord] | None = None,
        use_cache: bool = True,
        budget: "BudgetMeter | None" = None,
        node_guard: "Callable[[RegionExpr, int], None] | None" = None,
    ) -> Evaluator:
        return Evaluator(
            self.instance,
            word_lookup=self if self.word_index is not None else None,
            counters=self.counters,
            strict_names=strict_names,
            region_cache=self.region_cache if use_cache else None,
            node_log=node_log,
            budget=budget,
            node_guard=node_guard,
        )

    def evaluate(self, expression: RegionExpr | str) -> RegionSet:
        """Evaluate a region expression (AST or ASCII syntax)."""
        if isinstance(expression, str):
            expression = parse_expression(expression)
        return self.evaluator().evaluate(expression)

    def run(
        self,
        expression: RegionExpr | str,
        node_log: dict[RegionExpr, NodeRecord] | None = None,
        use_cache: bool = True,
        budget: "BudgetMeter | None" = None,
        node_guard: "Callable[[RegionExpr, int], None] | None" = None,
    ) -> EvalStats:
        """Evaluate with a private counter tally and wall time (for
        measurements).  ``node_log`` additionally collects per-node actuals
        (EXPLAIN ANALYZE); ``use_cache=False`` bypasses the shared result
        cache so every node's cost is actually measured; ``budget`` guards
        the operator loops (see :class:`~repro.algebra.evaluator.Evaluator`);
        ``node_guard`` is the evaluator's opaque per-node hook (adaptive
        re-planning)."""
        if isinstance(expression, str):
            expression = parse_expression(expression)
        return self.evaluator(
            node_log=node_log, use_cache=use_cache, budget=budget,
            node_guard=node_guard,
        ).run(expression)

    # -- PAT search conveniences -----------------------------------------------------

    def phrase(self, *words: str, max_gap: int = 2) -> RegionSet:
        """Spans where the words occur in order, each within ``max_gap``
        characters of the previous (PAT's proximity search)."""
        from repro.index import search

        if not words:
            raise RegionIndexError("phrase needs at least one word")
        spans = self.occurrences(words[0])
        for word in words[1:]:
            spans = search.followed_by(
                spans, self.occurrences(word), max_gap=max_gap, counters=self.counters
            )
        return spans

    def near(self, first: str, second: str, max_gap: int = 80) -> RegionSet:
        """Unordered word proximity."""
        from repro.index import search

        return search.proximity(
            self.occurrences(first),
            self.occurrences(second),
            max_gap=max_gap,
            counters=self.counters,
        )

    def regions_with_frequency(
        self, region_name: str, word: str, min_count: int
    ) -> RegionSet:
        """Frequency search: the ``region_name`` regions containing at least
        ``min_count`` occurrences of ``word``."""
        from repro.index import search

        return search.select_by_frequency(
            self.instance.get(region_name),
            self.occurrences(word),
            min_count,
            counters=self.counters,
        )

    # -- text access --------------------------------------------------------------------

    def region_text(self, region: Region) -> str:
        return self.text[region.start : region.end]

    def region_names(self) -> tuple[str, ...]:
        return self.instance.names

    # -- accounting ----------------------------------------------------------------------

    def statistics(self) -> IndexStatistics:
        return IndexStatistics.measure(self)
