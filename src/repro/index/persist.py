"""Index persistence.

Building region indexes requires parsing the corpus — by far the most
expensive step.  Persisting the engine saves the corpus text and the region
instance; the word index and sistring array are rebuilt from the text at
load time (tokenisation is an order of magnitude cheaper than parsing).

Layout of a saved engine directory::

    corpus.txt     the indexed text
    regions.json   {"region name": [[start, end], ...], ...}
    config.json    the IndexConfig that built the engine
    manifest.json  format version, per-file CRC32 checksums, the corpus
                   content hash, and (when known) the source file's
                   path/mtime/size fingerprint

Integrity and staleness are distinguished by typed errors:

- :class:`~repro.errors.IndexNotFoundError` — the directory is not a saved
  index at all;
- :class:`~repro.errors.IndexCorruptError` — a file fails its recorded
  checksum, is truncated/unparseable, or the format version is unknown;
- :class:`~repro.errors.IndexStaleError` — the index is intact but the
  source file changed after it was built (raised by callers via
  :func:`stale_reason`).

Indexes saved before manifests existed (format version 1) load without
checksum verification.

Saves are crash-safe: :func:`save_index` writes into a temporary sibling
directory and renames it into place only once every file (manifest
included) is on disk, so an interrupted save cannot leave a torn index.

Replicated layout (``save_index(..., replicas=N)``)::

    manifest.json      kind="replicated": the replica map, the corpus
                       fingerprint every replica must match, and (v3) the
                       live journal checkpoint — written last, the commit
                       point for the whole set
    replica-0/         a complete, self-verifying v2/v3 index
    replica-1/         ...
    quarantine-*/      damaged replicas set aside by the scrubber (never
                       deleted automatically)

Each ``replica-{i}/`` is a full saved index in its own right, so every
single-directory primitive in this module (verify, load, swap-in-place)
applies per replica unchanged.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import zlib
from pathlib import Path
from typing import TYPE_CHECKING

from repro.algebra.region import Instance, Region, RegionSet
from repro.errors import (
    IndexConfigError,
    IndexCorruptError,
    IndexNotFoundError,
    RegionError,
)
from repro.index.config import IndexConfig, ScopedRegionSpec
from repro.index.engine import IndexEngine
from repro.index.suffix_array import SuffixArray
from repro.index.word_index import WordIndex

if TYPE_CHECKING:  # pragma: no cover
    from repro.schema.structuring import StructuringSchema

_FORMAT_VERSION = 2
#: Version written when the index carries live-ingestion state (an
#: ``applied_seq`` journal checkpoint).  Plain saves stay at version 2 so
#: existing indexes and their readers are untouched.
_LIVE_FORMAT_VERSION = 3
_SUPPORTED_VERSIONS = (1, 2, 3)

#: The files covered by manifest checksums.
_CHECKSUMMED = ("corpus.txt", "regions.json", "config.json")

#: Manifest ``kind`` marking a replicated shard directory.
REPLICA_KIND = "replicated"
REPLICA_FORMAT_VERSION = 1
#: Replica subdirectories are named ``replica-0``, ``replica-1``, ...
REPLICA_DIR_PREFIX = "replica-"
#: Damaged replicas are renamed (never deleted) under this prefix.
QUARANTINE_PREFIX = "quarantine-"


def replica_dir_name(index: int) -> str:
    return f"{REPLICA_DIR_PREFIX}{index}"


def schema_fingerprint(schema: "StructuringSchema") -> str:
    """A stable fingerprint of the structuring schema an index was built
    with: the grammar start symbol plus a hash of the non-terminal set.

    A saved index is a function of (corpus text, schema, index config);
    loading it under a *different* schema would silently produce wrong
    answers — region names would bind to the wrong grammar.  The
    fingerprint travels with the saved index so ``from_saved`` can refuse.
    """
    payload = json.dumps(
        {
            "start": schema.grammar.start,
            "nonterminals": sorted(schema.grammar.nonterminals),
        },
        sort_keys=True,
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
    return f"{schema.grammar.start}:{digest}"


def corpus_fingerprint(text: str) -> str:
    """Content hash of a corpus text — the staleness comparand recorded at
    build time and recomputed against the current source at load time."""
    return "sha256:" + hashlib.sha256(text.encode("utf-8")).hexdigest()[:32]


def _crc32(data: bytes) -> str:
    return f"crc32:{zlib.crc32(data) & 0xFFFFFFFF:08x}"


def load_schema_fingerprint(directory: str | os.PathLike[str]) -> str | None:
    """The fingerprint stored with a saved index (``None`` for indexes
    saved before fingerprints existed, or saved without a schema)."""
    path = Path(directory) / "config.json"
    try:
        config_data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise IndexNotFoundError(str(Path(directory)), "missing config.json") from None
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise IndexCorruptError(
            str(Path(directory)), f"config.json unreadable: {error}", part="config.json"
        ) from None
    return config_data.get("schema_fingerprint")


def load_manifest(directory: str | os.PathLike[str]) -> dict | None:
    """The saved manifest, or ``None`` for pre-manifest (v1) indexes.

    Raises :class:`IndexCorruptError` when a manifest exists but cannot be
    parsed — a half-written or damaged manifest must not demote integrity
    checking to "legacy index, skip verification".
    """
    path = Path(directory) / "manifest.json"
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        return None
    except (json.JSONDecodeError, UnicodeDecodeError) as error:
        raise IndexCorruptError(
            str(Path(directory)), f"manifest unreadable: {error}", part="manifest.json"
        ) from None
    if not isinstance(data, dict):
        raise IndexCorruptError(
            str(Path(directory)), "manifest is not an object", part="manifest.json"
        )
    return data


def save_index(
    engine: IndexEngine,
    directory: str | os.PathLike[str],
    schema_fingerprint: str | None = None,
    source_path: str | os.PathLike[str] | None = None,
    live: dict | None = None,
    replicas: int | None = None,
) -> None:
    """Persist an engine's text and region indexes to ``directory``.

    ``source_path`` (optional) records the original file's mtime/size next
    to the corpus content hash, enabling cheap staleness checks at load
    time.

    ``live`` (optional) attaches live-ingestion state to the manifest —
    today the journal checkpoint ``{"applied_seq": N}``.  Because it rides
    in the manifest, it is committed by the *same* rename that promotes the
    folded data: a compaction can never land rows without advancing the
    checkpoint, or vice versa.  Saves carrying ``live`` are stamped format
    version 3; plain saves stay at version 2.

    ``replicas=N`` (optional, N >= 1) writes the replicated layout instead:
    ``replica-{i}/`` sibling directories under ``directory``, each a
    complete v2/v3 index, plus a ``kind="replicated"`` manifest recording
    the replica map.  The manifest is written last inside the staging
    sibling, and the whole set is promoted by one rename — the same commit
    point discipline as a plain save.

    The save is crash-safe: every file is written into a temporary sibling
    directory which is renamed into place only once complete.  A process
    killed mid-save therefore never leaves a half-written index at
    ``directory`` — the previous index (if any) survives intact instead of
    failing at checksum-verify time on the next load.  When replacing an
    existing index the swap is two renames (retire the old directory,
    promote the new one); a crash exactly between them leaves the old
    index complete under a ``.<name>.retired-*`` sibling rather than a
    torn mixture of the two.
    """
    if replicas is not None and replicas < 1:
        raise ValueError(f"replicas must be >= 1, got {replicas}")
    target = Path(directory)
    target.parent.mkdir(parents=True, exist_ok=True)
    sweep_stale_staging(target)
    staging = target.parent / f".{target.name}.saving-{os.getpid()}"
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir()
    try:
        if replicas is None:
            _write_index_files(engine, staging, schema_fingerprint, source_path, live)
        else:
            for i in range(replicas):
                replica = staging / replica_dir_name(i)
                replica.mkdir()
                _write_index_files(engine, replica, schema_fingerprint, source_path, live)
            _write_replica_manifest(
                staging,
                corpus_fingerprint(engine.text),
                [replica_dir_name(i) for i in range(replicas)],
                _source_record(source_path),
                live,
            )
        _swap_into_place(staging, target)
    finally:
        shutil.rmtree(staging, ignore_errors=True)


def _source_record(source_path: str | os.PathLike[str] | None) -> dict | None:
    if source_path is None:
        return None
    source: dict = {"path": str(source_path)}
    try:
        stat = os.stat(source_path)
        source["mtime"] = stat.st_mtime
        source["size"] = stat.st_size
    except OSError:
        pass  # fingerprint still works via the content hash
    return source


def _replica_manifest_data(
    fingerprint: str,
    replica_names: list[str],
    source: dict | None,
    live: dict | None,
) -> dict:
    manifest = {
        "format_version": _FORMAT_VERSION if live is None else _LIVE_FORMAT_VERSION,
        "kind": REPLICA_KIND,
        "replica_format_version": REPLICA_FORMAT_VERSION,
        "corpus_fingerprint": fingerprint,
        "replicas": [{"directory": name} for name in replica_names],
        "source": source,
    }
    if live is not None:
        manifest["live"] = dict(live)
    return manifest


def _write_replica_manifest(
    path: Path,
    fingerprint: str,
    replica_names: list[str],
    source: dict | None,
    live: dict | None,
) -> None:
    data = _replica_manifest_data(fingerprint, replica_names, source, live)
    (path / "manifest.json").write_text(json.dumps(data, indent=2), encoding="utf-8")


def save_replica_manifest(
    directory: str | os.PathLike[str],
    fingerprint: str,
    replica_names: list[str],
    source: dict | None = None,
    live: dict | None = None,
) -> None:
    """Atomically (re)write the shard-level manifest of a replicated
    directory — the commit point for compactions and reconciliations that
    update replicas in place rather than re-staging the whole set."""
    target = Path(directory)
    data = _replica_manifest_data(fingerprint, replica_names, source, live)
    tmp = target / f".manifest.json.tmp-{os.getpid()}"
    tmp.write_text(json.dumps(data, indent=2), encoding="utf-8")
    os.replace(tmp, target / "manifest.json")


def load_replica_manifest(directory: str | os.PathLike[str]) -> dict | None:
    """The replicated-layout manifest of ``directory``, or ``None`` when
    the directory is not a replicated index.

    A damaged shard-level manifest must not make a shard with intact
    replicas unreadable: when the manifest is missing or unparseable but
    ``replica-*/`` subdirectories exist, a degraded manifest is synthesised
    from the directory listing (``corpus_fingerprint`` is ``None`` — no
    recorded expectation survives — and ``"manifest_damaged": True`` marks
    it for the scrubber).
    """
    path = Path(directory)
    try:
        manifest = load_manifest(path)
    except IndexCorruptError:
        manifest = None
    if manifest is not None and manifest.get("kind") == REPLICA_KIND:
        replicas = manifest.get("replicas")
        if not isinstance(replicas, list) or not all(
            isinstance(r, dict) and isinstance(r.get("directory"), str)
            for r in replicas
        ):
            raise IndexCorruptError(
                str(path), "replicated manifest has a malformed replica map",
                part="manifest.json",
            )
        return manifest
    if manifest is not None:
        return None  # a plain (or sharded-root) manifest
    listed = sorted(
        entry.name
        for entry in path.glob(f"{REPLICA_DIR_PREFIX}*")
        if entry.is_dir()
    )
    if not listed:
        return None
    return {
        "format_version": _FORMAT_VERSION,
        "kind": REPLICA_KIND,
        "replica_format_version": REPLICA_FORMAT_VERSION,
        "corpus_fingerprint": None,
        "replicas": [{"directory": name} for name in listed],
        "source": None,
        "manifest_damaged": True,
    }


def is_replicated_index(directory: str | os.PathLike[str]) -> bool:
    """True when ``directory`` uses the replicated layout."""
    try:
        return load_replica_manifest(directory) is not None
    except IndexCorruptError:
        return True  # claims the layout, even if the replica map is torn


def replica_directories(directory: str | os.PathLike[str]) -> list[Path]:
    """The replica subdirectories recorded (or, degraded, discovered) at
    ``directory``, in manifest order.  Empty for non-replicated layouts."""
    manifest = load_replica_manifest(directory)
    if manifest is None:
        return []
    root = Path(directory)
    return [root / entry["directory"] for entry in manifest["replicas"]]


def sweep_stale_staging(directory: str | os.PathLike[str]) -> list[str]:
    """Remove orphaned staging/retired siblings left by a crash mid-save.

    A process killed inside :func:`save_index` can leave a
    ``.<name>.saving-<pid>`` (and, mid-swap, a ``.<name>.retired-<pid>``)
    sibling directory behind forever.  They are dead weight: the swap
    protocol guarantees the *target* is always a complete index, so any
    sibling belonging to another (necessarily dead or restarted) save
    attempt is safe to delete.  Returns the removed paths so callers can
    surface a ``stale-staging-removed`` warning.
    """
    target = Path(directory)
    removed: list[str] = []
    parent = target.parent
    if not parent.is_dir():
        return removed
    for kind in ("saving", "retired"):
        for orphan in parent.glob(f".{target.name}.{kind}-*"):
            if not orphan.is_dir():
                continue
            shutil.rmtree(orphan, ignore_errors=True)
            if not orphan.exists():
                removed.append(str(orphan))
    return removed


def load_live_state(directory: str | os.PathLike[str]) -> dict | None:
    """The live-ingestion state stored in a saved index's manifest, or
    ``None`` when the index has none (v1/v2, or v3 without the key)."""
    manifest = load_manifest(directory)
    if manifest is None:
        return None
    live = manifest.get("live")
    return dict(live) if isinstance(live, dict) else None


def applied_seq(directory: str | os.PathLike[str]) -> int:
    """The journal checkpoint recorded with a saved index: every journal
    frame with ``seq`` at or below this value is already folded into the
    base index.  ``0`` when the index carries no live state."""
    live = load_live_state(directory)
    if live is None:
        return 0
    value = live.get("applied_seq", 0)
    return int(value) if isinstance(value, (int, float)) else 0


def _swap_into_place(staging: Path, target: Path) -> None:
    """Promote a fully written ``staging`` directory to ``target``.

    A fresh target is a single atomic rename.  Replacing an existing index
    retires the old directory first; if promoting the new one then fails,
    the old index is restored before the error propagates.
    """
    if not target.exists():
        os.rename(staging, target)
        return
    retired = target.parent / f".{target.name}.retired-{os.getpid()}"
    if retired.exists():
        shutil.rmtree(retired)
    os.rename(target, retired)
    try:
        os.rename(staging, target)
    except OSError:
        os.rename(retired, target)
        raise
    shutil.rmtree(retired, ignore_errors=True)


def _write_index_files(
    engine: IndexEngine,
    path: Path,
    schema_fingerprint: str | None,
    source_path: str | os.PathLike[str] | None,
    live: dict | None = None,
) -> None:
    """Write the four index files (corpus, regions, config, manifest) into
    an existing directory.  Callers are responsible for atomicity."""
    format_version = _FORMAT_VERSION if live is None else _LIVE_FORMAT_VERSION
    (path / "corpus.txt").write_text(engine.text, encoding="utf-8")
    regions = {
        name: [[region.start, region.end] for region in region_set]
        for name, region_set in engine.instance.items()
    }
    (path / "regions.json").write_text(json.dumps(regions), encoding="utf-8")
    config = engine.config
    config_data = {
        "version": format_version,
        "region_names": (
            sorted(config.region_names) if config.region_names is not None else None
        ),
        "scoped": [
            {"source": spec.source, "scope": spec.scope, "name": spec.name}
            for spec in config.scoped
        ],
        "word_index": config.word_index,
        "word_scope": config.word_scope,
        "lowercase_words": config.lowercase_words,
        "suffix_array": config.suffix_array,
    }
    if schema_fingerprint is not None:
        config_data["schema_fingerprint"] = schema_fingerprint
    (path / "config.json").write_text(json.dumps(config_data, indent=2), encoding="utf-8")

    source = _source_record(source_path)
    manifest = {
        "format_version": format_version,
        "corpus_fingerprint": corpus_fingerprint(engine.text),
        "checksums": {
            name: _crc32((path / name).read_bytes()) for name in _CHECKSUMMED
        },
        "source": source,
    }
    if live is not None:
        manifest["live"] = dict(live)
    (path / "manifest.json").write_text(json.dumps(manifest, indent=2), encoding="utf-8")


def verify_index(directory: str | os.PathLike[str]) -> dict | None:
    """Check a saved index's integrity without loading it.

    Returns the manifest (``None`` for legacy v1 directories, which have
    no checksums to verify).  Raises :class:`IndexNotFoundError` when the
    directory is not a saved index and :class:`IndexCorruptError` on any
    checksum mismatch or missing checksummed file.
    """
    path = Path(directory)
    if not (path / "config.json").exists():
        raise IndexNotFoundError(str(path), "missing config.json")
    manifest = load_manifest(path)
    if manifest is None:
        return None
    checksums = manifest.get("checksums")
    if not isinstance(checksums, dict):
        raise IndexCorruptError(
            str(path), "manifest has no checksums", part="manifest.json"
        )
    for name, expected in checksums.items():
        try:
            actual = _crc32((path / name).read_bytes())
        except FileNotFoundError:
            raise IndexCorruptError(
                str(path), f"checksummed file {name} is missing", part=name
            ) from None
        if actual != expected:
            raise IndexCorruptError(
                str(path),
                f"checksum mismatch for {name} (expected {expected}, got {actual})",
                part=name,
            )
    return manifest


def stale_reason(
    directory: str | os.PathLike[str],
    source_text: str | None = None,
    source_path: str | os.PathLike[str] | None = None,
) -> str | None:
    """Why the saved index is stale against the current source, or ``None``
    when it is fresh (or staleness cannot be assessed).

    Decisive check: the corpus content hash recorded at build time vs. the
    hash of the current source text.  When only a path is given, the file
    is read; its stored mtime/size (if recorded) are reported in the
    reason for diagnostics.
    """
    path = Path(directory)
    if source_text is None and source_path is None:
        return None
    if source_text is None:
        try:
            source_text = Path(source_path).read_text(encoding="utf-8")
        except OSError as error:
            return f"source file {source_path!s} unreadable: {error}"
    current = corpus_fingerprint(source_text)
    manifest = load_manifest(path)
    if manifest is not None and isinstance(manifest.get("corpus_fingerprint"), str):
        saved = manifest["corpus_fingerprint"]
    else:
        # Legacy index: fall back to hashing the saved corpus text itself.
        try:
            saved = corpus_fingerprint((path / "corpus.txt").read_text(encoding="utf-8"))
        except OSError:
            return None  # no basis for comparison
    if saved == current:
        return None
    reason = (
        f"source content changed since the index was built "
        f"(saved {saved}, current {current})"
    )
    if manifest is not None and isinstance(manifest.get("source"), dict):
        recorded = manifest["source"]
        if "mtime" in recorded:
            reason += f"; indexed source mtime {recorded['mtime']}"
    return reason


def load_index(
    directory: str | os.PathLike[str], verify_checksums: bool = True
) -> IndexEngine:
    """Load a persisted engine; rebuilds word/suffix indexes from the text.

    Raises :class:`IndexNotFoundError` when ``directory`` is not a saved
    index, and :class:`IndexCorruptError` when it is one but fails
    integrity verification (checksums, structure, format version).
    """
    path = Path(directory)
    if verify_checksums:
        verify_index(path)
    try:
        text = (path / "corpus.txt").read_text(encoding="utf-8")
        regions_raw = (path / "regions.json").read_text(encoding="utf-8")
        config_raw = (path / "config.json").read_text(encoding="utf-8")
    except FileNotFoundError as error:
        missing = Path(getattr(error, "filename", "") or "").name
        if missing == "config.json" or not (path / "config.json").exists():
            raise IndexNotFoundError(str(path), str(error)) from None
        raise IndexCorruptError(
            str(path), f"missing file: {error}", part=missing or None
        ) from None
    try:
        regions_data = json.loads(regions_raw)
        config_data = json.loads(config_raw)
    except json.JSONDecodeError as error:
        raise IndexCorruptError(str(path), f"unparseable JSON: {error}") from None
    version = config_data.get("version")
    if version not in _SUPPORTED_VERSIONS:
        raise IndexCorruptError(
            str(path),
            f"unsupported saved-index version {version!r} "
            f"(supported: {_SUPPORTED_VERSIONS})",
            part="config.json",
        )
    try:
        config = IndexConfig(
            region_names=(
                frozenset(config_data["region_names"])
                if config_data["region_names"] is not None
                else None
            ),
            scoped=tuple(
                ScopedRegionSpec(
                    source=item["source"], scope=item["scope"], name=item["name"]
                )
                for item in config_data["scoped"]
            ),
            word_index=config_data["word_index"],
            word_scope=config_data["word_scope"],
            lowercase_words=config_data["lowercase_words"],
            suffix_array=config_data["suffix_array"],
        )
        instance = Instance(
            {
                name: RegionSet(Region(start, end) for start, end in spans)
                for name, spans in regions_data.items()
            }
        )
    except (KeyError, TypeError, ValueError, RegionError, IndexConfigError) as error:
        raise IndexCorruptError(
            str(path), f"malformed saved-index structure: {error!r}"
        ) from None
    word_index = None
    if config.word_index:
        scope = instance.get(config.word_scope) if config.word_scope else None
        word_index = WordIndex(text, lowercase=config.lowercase_words, scope=scope)
    suffixes = SuffixArray(text) if config.suffix_array else None
    return IndexEngine(
        text=text,
        instance=instance,
        word_index=word_index,
        suffix_array=suffixes,
        config=config,
    )
