"""Index persistence.

Building region indexes requires parsing the corpus — by far the most
expensive step.  Persisting the engine saves the corpus text and the region
instance; the word index and sistring array are rebuilt from the text at
load time (tokenisation is an order of magnitude cheaper than parsing).

Layout of a saved engine directory::

    corpus.txt     the indexed text
    regions.json   {"region name": [[start, end], ...], ...}
    config.json    the IndexConfig that built the engine
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro.algebra.region import Instance, Region, RegionSet
from repro.errors import RegionIndexError
from repro.index.config import IndexConfig, ScopedRegionSpec
from repro.index.engine import IndexEngine
from repro.index.suffix_array import SuffixArray
from repro.index.word_index import WordIndex

if TYPE_CHECKING:  # pragma: no cover
    from repro.schema.structuring import StructuringSchema

_FORMAT_VERSION = 1


def schema_fingerprint(schema: "StructuringSchema") -> str:
    """A stable fingerprint of the structuring schema an index was built
    with: the grammar start symbol plus a hash of the non-terminal set.

    A saved index is a function of (corpus text, schema, index config);
    loading it under a *different* schema would silently produce wrong
    answers — region names would bind to the wrong grammar.  The
    fingerprint travels with the saved index so ``from_saved`` can refuse.
    """
    payload = json.dumps(
        {
            "start": schema.grammar.start,
            "nonterminals": sorted(schema.grammar.nonterminals),
        },
        sort_keys=True,
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
    return f"{schema.grammar.start}:{digest}"


def load_schema_fingerprint(directory: str | os.PathLike[str]) -> str | None:
    """The fingerprint stored with a saved index (``None`` for indexes
    saved before fingerprints existed, or saved without a schema)."""
    path = Path(directory) / "config.json"
    try:
        config_data = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise RegionIndexError(f"not a saved index directory: {Path(directory)}") from None
    return config_data.get("schema_fingerprint")


def save_index(
    engine: IndexEngine,
    directory: str | os.PathLike[str],
    schema_fingerprint: str | None = None,
) -> None:
    """Persist an engine's text and region indexes to ``directory``."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    (path / "corpus.txt").write_text(engine.text, encoding="utf-8")
    regions = {
        name: [[region.start, region.end] for region in region_set]
        for name, region_set in engine.instance.items()
    }
    (path / "regions.json").write_text(json.dumps(regions), encoding="utf-8")
    config = engine.config
    config_data = {
        "version": _FORMAT_VERSION,
        "region_names": (
            sorted(config.region_names) if config.region_names is not None else None
        ),
        "scoped": [
            {"source": spec.source, "scope": spec.scope, "name": spec.name}
            for spec in config.scoped
        ],
        "word_index": config.word_index,
        "word_scope": config.word_scope,
        "lowercase_words": config.lowercase_words,
        "suffix_array": config.suffix_array,
    }
    if schema_fingerprint is not None:
        config_data["schema_fingerprint"] = schema_fingerprint
    (path / "config.json").write_text(json.dumps(config_data, indent=2), encoding="utf-8")


def load_index(directory: str | os.PathLike[str]) -> IndexEngine:
    """Load a persisted engine; rebuilds word/suffix indexes from the text."""
    path = Path(directory)
    try:
        text = (path / "corpus.txt").read_text(encoding="utf-8")
        regions_data = json.loads((path / "regions.json").read_text(encoding="utf-8"))
        config_data = json.loads((path / "config.json").read_text(encoding="utf-8"))
    except FileNotFoundError as error:
        raise RegionIndexError(f"not a saved index directory: {path} ({error})") from None
    if config_data.get("version") != _FORMAT_VERSION:
        raise RegionIndexError(
            f"unsupported saved-index version {config_data.get('version')!r}"
        )
    config = IndexConfig(
        region_names=(
            frozenset(config_data["region_names"])
            if config_data["region_names"] is not None
            else None
        ),
        scoped=tuple(
            ScopedRegionSpec(
                source=item["source"], scope=item["scope"], name=item["name"]
            )
            for item in config_data["scoped"]
        ),
        word_index=config_data["word_index"],
        word_scope=config_data["word_scope"],
        lowercase_words=config_data["lowercase_words"],
        suffix_array=config_data["suffix_array"],
    )
    instance = Instance(
        {
            name: RegionSet(Region(start, end) for start, end in spans)
            for name, spans in regions_data.items()
        }
    )
    word_index = None
    if config.word_index:
        scope = instance.get(config.word_scope) if config.word_scope else None
        word_index = WordIndex(text, lowercase=config.lowercase_words, scope=scope)
    suffixes = SuffixArray(text) if config.suffix_array else None
    return IndexEngine(
        text=text,
        instance=instance,
        word_index=word_index,
        suffix_array=suffixes,
        config=config,
    )
