#!/usr/bin/env python3
"""Validate query-server response envelopes against the checked-in schema,
with no third-party dependencies.

Usage::

    curl -s localhost:8080/stats | python scripts/check_server_schema.py
    python scripts/check_server_schema.py response.json [response2.json ...]

Each input document must be one envelope from the family pinned in
``schemas/server.schema.json``.  Validation happens in three steps:

1. the envelope base (``ok`` + a known ``kind``);
2. the full shape for that ``kind`` (``#/definitions/<kind>``);
3. for ``kind=analyze``, the ``analysis`` payload additionally against
   ``schemas/analyze.schema.json`` — the server's analyze body is the
   CLI's ``analyze --json`` contract verbatim, and this keeps the two
   from drifting apart.

Independently of any input documents, the warning-code enum pinned in
the schema is cross-checked against the constants in
``repro.resilience.warnings``: a new code cannot ship without extending
the schema, and the schema cannot pin codes the engine no longer emits.

Reuses the subset-of-JSON-Schema validator from
``scripts/check_analyze_schema.py``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from check_analyze_schema import SCHEMA_PATH as ANALYZE_SCHEMA_PATH  # noqa: E402
from check_analyze_schema import validate  # noqa: E402

SCHEMA_PATH = Path(__file__).resolve().parent.parent / "schemas" / "server.schema.json"


def warning_code_mismatches(schema: dict) -> list[str]:
    """Drift between the schema's warning-code enum and the engine's
    warning vocabulary (``repro.resilience.warnings``), empty = in sync."""
    from repro.resilience import warnings as warning_codes

    engine_codes = {
        value
        for name, value in vars(warning_codes).items()
        if name.isupper() and isinstance(value, str)
    }
    pinned = set(
        schema["definitions"]["warnings"]["items"]["properties"]["code"]["enum"]
    )
    errors = []
    for code in sorted(engine_codes - pinned):
        errors.append(
            f"warning code {code!r} exists in repro.resilience.warnings "
            "but is not pinned in the schema enum"
        )
    for code in sorted(pinned - engine_codes):
        errors.append(
            f"warning code {code!r} is pinned in the schema enum but "
            "repro.resilience.warnings no longer defines it"
        )
    return errors


def validate_envelope(document: object, schema: dict, analyze_schema: dict) -> list[str]:
    """All violations for one server envelope (empty = valid)."""
    errors = validate(document, schema, root=schema)
    if errors or not isinstance(document, dict):
        return errors
    kind = document.get("kind")
    definition = schema["definitions"].get(kind)
    if definition is None:  # the enum check above already flagged it
        return [f"$: unknown envelope kind {kind!r}"]
    errors = validate(document, definition, root=schema, path=f"$({kind})")
    if not errors and kind == "analyze":
        errors = validate(
            document["analysis"], analyze_schema, path="$(analyze).analysis"
        )
    return errors


def main(argv: list[str]) -> int:
    schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    analyze_schema = json.loads(ANALYZE_SCHEMA_PATH.read_text(encoding="utf-8"))
    drift = warning_code_mismatches(schema)
    for message in drift:
        print(f"schema drift: {message}", file=sys.stderr)
    if drift:
        return 1
    sources = (
        [(path, Path(path).read_text(encoding="utf-8")) for path in argv[1:]]
        if len(argv) > 1
        else [("<stdin>", sys.stdin.read())]
    )
    failed = False
    for name, text in sources:
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            print(f"{name}: invalid JSON: {error}", file=sys.stderr)
            return 2
        errors = validate_envelope(document, schema, analyze_schema)
        for message in errors:
            print(f"{name}: schema violation: {message}", file=sys.stderr)
        failed = failed or bool(errors)
    if failed:
        return 1
    print(
        f"{len(sources)} envelope(s) conform to schemas/server.schema.json"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
