#!/usr/bin/env python
"""CI shard-failure matrix.

Drives the sharded engine through the failure scenarios the robustness
docs promise — 1-of-N corrupt, 1-of-N stale, transient-fault retry, and
a breaker trip — and asserts the partial-result/row-identity contracts
hold.  Dependency-free (stdlib + repro only); exits non-zero with a
readable message on the first violated invariant.

Usage::

    PYTHONPATH=src python scripts/shard_fault_matrix.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro.core.engine import FileQueryEngine
from repro.errors import ShardFailedError
from repro.resilience import (
    BreakerConfig,
    DegradationPolicy,
    RetryPolicy,
    TransientIOFault,
)
from repro.shard import ShardedEngine, split_corpus
from repro.workloads.bibtex import bibtex_schema, generate_bibtex

N_SHARDS = 8
QUERY = 'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'


def check(condition: bool, message: str) -> None:
    if not condition:
        print(f"FAIL: {message}", file=sys.stderr)
        sys.exit(1)
    print(f"  ok: {message}")


def build(root: Path, schema, text) -> Path:
    directory = root / "sidx"
    ShardedEngine.split(schema, text, N_SHARDS).save(directory)
    return directory


def scenario_corrupt(root: Path, schema, text) -> None:
    print("scenario: 1-of-N corrupt shard")
    directory = build(root / "corrupt", schema, text)
    healthy = ShardedEngine.from_saved(schema, directory).query(QUERY)
    victim_name = sorted(healthy.shard_results)[2]
    victim_dir = sorted((directory / "shards").iterdir())[2]
    (victim_dir / "corpus.txt").write_text("garbage", encoding="utf-8")

    partial = ShardedEngine.from_saved(schema, directory).query(QUERY)
    codes = [warning.code for warning in partial.warnings]
    check("shard-failed" in codes, "corrupt shard reported as shard-failed")
    check("partial-result" in codes, "merged result flagged partial-result")
    check(
        partial.canonical_rows()
        == set().union(
            *(r.canonical_rows() for n, r in healthy.shard_results.items()
              if n != victim_name)
        ),
        "healthy shards' rows byte-identical to their pre-corruption answers",
    )
    check(
        partial.stats.to_dict()["shards"][2]["status"] == "failed",
        "stats.to_dict()['shards'] records the failure",
    )

    try:
        ShardedEngine.from_saved(schema, directory, fail_fast=True).query(QUERY)
        check(False, "--fail-fast raises ShardFailedError")
    except ShardFailedError as error:
        check(error.shard == victim_name, "ShardFailedError names the shard")


def scenario_stale(root: Path, schema, text) -> None:
    print("scenario: 1-of-N stale shard")
    directory = root / "stale" / "sidx"
    sources = []
    parts = split_corpus(schema, text, N_SHARDS)
    (root / "stale").mkdir(parents=True, exist_ok=True)
    for number, part in enumerate(parts):
        path = root / "stale" / f"part{number}.bib"
        path.write_text(part, encoding="utf-8")
        sources.append(path)
    ShardedEngine.from_paths(schema, sources).save(directory)

    # Rewrite one source after its index was built -> that shard is stale.
    sources[4].write_text(generate_bibtex(entries=3, seed=99), encoding="utf-8")

    strict = ShardedEngine.from_saved(
        schema, directory, policy=DegradationPolicy.strict()
    )
    result = strict.query(QUERY)
    codes = [warning.code for warning in result.warnings]
    check("shard-failed" in codes, "strict policy fails the stale shard")
    check("partial-result" in codes, "stale shard yields a partial result")
    record = result.stats.to_dict()["shards"][4]
    check(record["status"] == "failed", "per-shard record shows the failure")
    check("stale" in (record["error"] or ""), "failure reason mentions staleness")

    tolerant = ShardedEngine.from_saved(schema, directory)
    degraded = tolerant.query(QUERY)
    check(
        degraded.stats.healthy_shards == N_SHARDS,
        "default policy keeps the stale shard answering (degraded)",
    )
    check(
        any(w.code == "index-stale" for w in degraded.warnings),
        "degraded stale shard surfaces an index-stale warning",
    )


def scenario_retry(schema, text, reference) -> None:
    print("scenario: transient fault retried")
    fault = TransientIOFault(k=2, shard="shard3")
    engine = ShardedEngine.split(
        schema, text, N_SHARDS,
        fault_injector=fault,
        retry=RetryPolicy(max_attempts=3),
        retry_sleep=lambda seconds: None,
    )
    result = engine.query(QUERY)
    check(
        result.canonical_rows() == reference,
        "rows identical to the uninjected run",
    )
    check(
        [w.code for w in result.warnings] == ["shard-retried"],
        "shard-retried recorded (and nothing else)",
    )
    check(fault.failures == 2, "injector failed exactly twice")


def scenario_breaker(schema, text) -> None:
    print("scenario: breaker trips after repeated failures")
    fault = TransientIOFault(k=10**9, shard="shard0")
    engine = ShardedEngine.split(
        schema, text, 4,
        fault_injector=fault,
        retry=RetryPolicy(max_attempts=2),
        breaker_config=BreakerConfig(failure_threshold=2, reset_timeout_s=3600),
        retry_sleep=lambda seconds: None,
    )
    engine.query(QUERY)
    engine.query(QUERY)
    check(
        engine.breaker_snapshot("shard0")["state"] == "open",
        "breaker open after repeated failures",
    )
    attempts_before = fault.calls
    third = engine.query(QUERY)
    check(
        "shard-skipped-open-breaker" in [w.code for w in third.warnings],
        "open breaker skips the shard",
    )
    check(fault.calls == attempts_before, "skipped shard is not touched")


def main() -> int:
    schema = bibtex_schema()
    text = generate_bibtex(entries=40, seed=11)
    reference = FileQueryEngine(schema, text).query(QUERY).canonical_rows()
    if not reference:
        print("FAIL: fixture query matched nothing", file=sys.stderr)
        return 1
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        scenario_corrupt(root, schema, text)
        scenario_stale(root, schema, text)
    scenario_retry(schema, text, reference)
    scenario_breaker(schema, text)
    print("shard fault matrix: all scenarios pass")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
