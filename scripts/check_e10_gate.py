#!/usr/bin/env python3
"""The E10 regression gate: the optimizer must not lose under calibration.

E10's ablation exposed multi-join queries where the Section 3.2 rewrite
chain, ranked by static operator weights alone, picked plans that did
*more* work than the unoptimized pipeline.  The feedback-calibrated cost
model exists to close that gap, so this gate asserts — on deterministic
work counters, not wall time — that once calibration has warmed up:

1. with-optimizer work <= without-optimizer work (ratio >= 1.0x) for the
   E10 multi-join and single-join pipelines;
2. rows are identical between the calibrated and uncalibrated engines
   (calibration may change *plans*, never *answers*);
3. the extended EXPLAIN ANALYZE JSON (estimated_rows per node, replans in
   stats) still conforms to ``schemas/analyze.schema.json``.

Run it directly (CI smoke job)::

    PYTHONPATH=src python scripts/check_e10_gate.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from check_analyze_schema import SCHEMA_PATH, validate  # noqa: E402

import json  # noqa: E402

from repro.cache import CacheConfig  # noqa: E402
from repro.core.engine import FileQueryEngine  # noqa: E402
from repro.workloads.bibtex import (  # noqa: E402
    CHANG_AUTHOR_QUERY,
    bibtex_schema,
    generate_bibtex,
)

CITATION_JOIN = (
    "SELECT r1.Key, r2.Key FROM Reference r1, Reference r2 "
    "WHERE r1.Referred.RefKey = r2.Key "
    'AND r2.Authors.Name.Last_Name = "Chang"'
)

ENTRIES = 400
SEED = 11
CALIBRATION_ROUNDS = 3


def _work(engine: FileQueryEngine, query: str) -> tuple[int, set]:
    """Deterministic work for one cache-cold run: region comparisons plus
    bytes (re-)parsed, alongside the canonical answer."""
    result = engine.query(query)
    algebra = result.stats.algebra.snapshot()
    work = algebra["comparisons"] + result.stats.bytes_parsed
    return work, result.canonical_rows()


def main() -> int:
    text = generate_bibtex(entries=ENTRIES, seed=SEED)
    schema = bibtex_schema()
    # Caches off everywhere: the gate measures plans, not memoization.
    no_cache = CacheConfig.disabled()

    calibrated = FileQueryEngine(
        schema, text, cache_config=no_cache, feedback=True
    )
    unoptimized = FileQueryEngine(
        schema,
        text,
        optimize_expressions=False,
        cache_config=no_cache,
    )
    uncalibrated = FileQueryEngine(schema, text, cache_config=no_cache)

    # Warm the calibration history the way production does: EXPLAIN
    # ANALYZE runs feed per-node estimate-vs-actual deltas.
    for _ in range(CALIBRATION_ROUNDS):
        for query in (CHANG_AUTHOR_QUERY, CITATION_JOIN):
            calibrated.analyze(query)
    if not calibrated.cost_model.calibrated:
        print("E10 gate: calibration never warmed up", file=sys.stderr)
        return 1

    failures = []
    for label, query in (
        ("pipeline", CHANG_AUTHOR_QUERY),
        ("multi-join", CITATION_JOIN),
    ):
        with_work, with_rows = _work(calibrated, query)
        without_work, without_rows = _work(unoptimized, query)
        _, cold_rows = _work(uncalibrated, query)
        ratio = without_work / with_work if with_work else float("inf")
        print(
            f"E10 {label}: with-optimizer(calibrated) work={with_work}, "
            f"without-optimizer work={without_work}, ratio={ratio:.2f}x"
        )
        if ratio < 1.0:
            failures.append(
                f"{label}: calibrated optimizer does MORE work than no "
                f"optimizer (ratio {ratio:.2f}x < 1.0x)"
            )
        if with_rows != without_rows:
            failures.append(f"{label}: rows differ between plans")
        if with_rows != cold_rows:
            failures.append(
                f"{label}: calibration changed the answer, not just the plan"
            )

    analysis = calibrated.analyze(CITATION_JOIN).to_dict()
    schema_doc = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    violations = validate(analysis, schema_doc)
    if violations:
        failures.extend(f"analyze schema: {message}" for message in violations)
    else:
        print("E10 gate: extended analyze JSON conforms to the schema")
    if any(node["estimated_rows"] is None for node in analysis["nodes"]):
        failures.append("analyze nodes missing estimated_rows")

    if failures:
        for message in failures:
            print(f"E10 gate FAILED: {message}", file=sys.stderr)
        return 1
    print("E10 gate passed: calibrated optimizer >= 1.0x, answers identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
