#!/usr/bin/env python3
"""Validate ``python -m repro analyze --json`` output against the checked-in
schema, with no third-party dependencies.

Usage::

    python -m repro analyze ... --json | python scripts/check_analyze_schema.py
    python scripts/check_analyze_schema.py analyze-output.json

Implements the subset of JSON Schema the schema file uses: ``type`` (string
or list of strings), ``properties``, ``required``, ``items``, ``enum``, and
``$ref`` into ``#/definitions``.  CI runs this as a smoke check so the
``--json`` contract cannot drift silently.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCHEMA_PATH = Path(__file__).resolve().parent.parent / "schemas" / "analyze.schema.json"

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is a subclass of int in Python: exclude it from the numeric types.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _resolve_ref(ref: str, root: dict) -> dict:
    if not ref.startswith("#/"):
        raise ValueError(f"unsupported $ref {ref!r} (only fragment refs)")
    node = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def validate(value, schema: dict, root: dict | None = None, path: str = "$") -> list[str]:
    """Return a list of violation messages (empty = valid)."""
    if root is None:
        root = schema
    if "$ref" in schema:
        return validate(value, _resolve_ref(schema["$ref"], root), root, path)

    errors: list[str] = []
    declared = schema.get("type")
    if declared is not None:
        types = declared if isinstance(declared, list) else [declared]
        if not any(_TYPE_CHECKS[t](value) for t in types):
            return [f"{path}: expected {' | '.join(types)}, got {type(value).__name__}"]
        if value is None and "null" in types:
            return []

    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")

    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in value:
                errors.extend(validate(value[key], subschema, root, f"{path}.{key}"))
    elif isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            errors.extend(validate(item, schema["items"], root, f"{path}[{index}]"))

    return errors


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        text = Path(argv[1]).read_text(encoding="utf-8")
    else:
        text = sys.stdin.read()
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        print(f"invalid JSON: {error}", file=sys.stderr)
        return 2
    schema = json.loads(SCHEMA_PATH.read_text(encoding="utf-8"))
    errors = validate(document, schema)
    if errors:
        for message in errors:
            print(f"schema violation: {message}", file=sys.stderr)
        return 1
    print("analyze --json output conforms to schemas/analyze.schema.json")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
