#!/usr/bin/env python
"""CI chaos matrix.

Runs the seed-driven chaos scenarios (:mod:`repro.chaos`) — hung shards
under deadlines, corrupt/stale saved indexes, transient I/O, worker-pool
stalls, admission overload, graceful-drain races, malformed HTTP bodies —
against both the solo and the sharded engine, and fails on the first
violated invariant of the healthy-twin oracle.

Usage::

    PYTHONPATH=src python scripts/chaos_matrix.py --seed 0..7
    PYTHONPATH=src python scripts/chaos_matrix.py --seed 3 --scenario hang
    PYTHONPATH=src python scripts/chaos_matrix.py --list
"""

from __future__ import annotations

import argparse
import sys

from repro.chaos import BACKENDS, SCENARIOS, parse_seeds, render_report, run_matrix


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument(
        "--seed",
        default="0..7",
        help="seeds to run: N, N..M, or a comma-separated mix (default 0..7)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="run only this scenario (repeatable; default: all)",
    )
    parser.add_argument(
        "--backend",
        choices=[*BACKENDS, "both"],
        default="both",
        help="engine(s) to drive the scenarios against",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name in sorted(SCENARIOS):
            scenario = SCENARIOS[name]
            print(f"{name:16s} [{', '.join(scenario.backends)}]")
            print(f"    {scenario.description}")
            print(f"    injection: {scenario.injection}")
        return 0

    backends = BACKENDS if args.backend == "both" else (args.backend,)
    runs = run_matrix(
        parse_seeds(args.seed), scenarios=args.scenario, backends=backends
    )
    print(render_report(runs))
    return 0 if all(run.passed for run in runs) else 1


if __name__ == "__main__":
    sys.exit(main())
