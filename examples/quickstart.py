"""Quickstart: query a bibliography file through its database view.

Reproduces the paper's running example (Section 2): find the references
where "Chang" is one of the authors — evaluated through text indexes rather
than by scanning and parsing the whole file.

Run:  python examples/quickstart.py
"""

from repro import FileQueryEngine
from repro.db.values import canonical
from repro.workloads.bibtex import bibtex_schema, generate_bibtex

QUERY = 'SELECT r FROM Reference r WHERE r.Authors.Name.Last_Name = "Chang"'


def main() -> None:
    # 1. A corpus of bibliography files (synthetic, seeded, deterministic).
    text = generate_bibtex(entries=200, seed=42)
    print(f"corpus: {len(text)} bytes, 200 references\n")

    # 2. Build the engine: parse once, derive the RIG from the grammar,
    #    build word + region indexes.
    schema = bibtex_schema()
    engine = FileQueryEngine(schema, text)

    # 3. Ask the planner what it will do - the paper's Section 3.2 rewrite
    #    appears verbatim.
    print(engine.explain(QUERY))
    print()

    # 4. Run it.
    result = engine.query(QUERY)
    print(f"{len(result.rows)} references with Chang as an author:")
    for row in result.rows[:5]:
        reference = row[0]
        authors = ", ".join(
            str(canonical(name.get("Last_Name"))) for name in reference.get("Authors")
        )
        print(f"  {canonical(reference.get('Key'))}: authors = {authors}")
    if len(result.rows) > 5:
        print(f"  ... and {len(result.rows) - 5} more")
    print()

    # 5. Compare against the standard-database pipeline (parse everything,
    #    load, evaluate).
    baseline = engine.baseline_query(QUERY)
    assert result.canonical_rows() == baseline.canonical_rows()
    print("cost comparison (same answers):")
    print(f"  index strategy: {result.stats.strategy}, "
          f"bytes parsed = {result.stats.bytes_parsed}")
    print(f"  baseline:       full-scan, "
          f"bytes parsed = {baseline.stats.bytes_parsed}")
    saved = 1 - result.stats.bytes_parsed / baseline.stats.bytes_parsed
    print(f"  file scanning avoided: {saved:.1%}")


if __name__ == "__main__":
    main()
