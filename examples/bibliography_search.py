"""Bibliography search: the paper's full query repertoire on BibTeX files.

Shows, on one corpus:

- simple selections (Section 5.1) and boolean combinations (5.2);
- the star-variable query ``r.*X.Last_Name`` (Section 5.3), which is
  *cheaper* here than its enumerated equivalent;
- the join query "edited by one of the authors" (Section 5.2);
- partial indexing (Section 6): candidates + filtering, with the paper's
  index set {Reference, Key, Last_Name};
- scoped indexing (Section 7): index only the last names inside Authors;
- the index advisor's recommendation for the workload.

Run:  python examples/bibliography_search.py
"""

from repro import FileQueryEngine, IndexAdvisor, IndexConfig
from repro.workloads.bibtex import (
    CHANG_ANY_QUERY,
    CHANG_AUTHOR_QUERY,
    SELF_EDITED_QUERY,
    bibtex_schema,
    generate_bibtex,
)

MORE_QUERIES = [
    'SELECT r FROM Reference r WHERE r.Year = "1982" OR r.Year = "1994"',
    'SELECT r FROM Reference r WHERE r.Keywords.Keyword = "Taylor series"',
    'SELECT r.Authors.Name.Last_Name FROM Reference r WHERE r.Publisher = "SIAM"',
]


def run(engine: FileQueryEngine, query: str, label: str) -> None:
    result = engine.query(query)
    baseline = engine.baseline_query(query)
    match = "OK" if result.canonical_rows() == baseline.canonical_rows() else "MISMATCH"
    print(
        f"[{label:>14}] {result.stats.strategy:<16} rows={len(result.rows):<4} "
        f"candidates={result.stats.candidate_regions:<4} "
        f"bytes={result.stats.bytes_parsed:<7} vs baseline {match}"
    )


def main() -> None:
    text = generate_bibtex(entries=300, seed=7, self_edited_rate=0.15)
    schema = bibtex_schema()

    print("=== full indexing " + "=" * 50)
    full = FileQueryEngine(schema, text)
    run(full, CHANG_AUTHOR_QUERY, "chang-author")
    run(full, CHANG_ANY_QUERY, "chang-any")
    run(full, SELF_EDITED_QUERY, "self-edited")
    for number, query in enumerate(MORE_QUERIES):
        run(full, query, f"extra-{number}")

    print("\n=== partial indexing {Reference, Key, Last_Name} " + "=" * 19)
    partial = FileQueryEngine(
        schema, text, IndexConfig.partial({"Reference", "Key", "Last_Name"})
    )
    run(partial, CHANG_AUTHOR_QUERY, "chang-author")
    run(partial, CHANG_ANY_QUERY, "chang-any")
    print("  (the author query filters out editor-only Changs after parsing",
          "candidates;\n   the star query needs no filtering - Section 6.3)")

    print("\n=== scoped indexing: Last_Name only inside Authors " + "=" * 16)
    scoped = FileQueryEngine(
        schema,
        text,
        IndexConfig.partial({"Reference", "Key"}).with_scoped("Last_Name", "Authors"),
    )
    run(scoped, CHANG_AUTHOR_QUERY, "chang-author")
    print("  plan:", scoped.plan(CHANG_AUTHOR_QUERY).optimized_expression)

    print("\n=== index advisor (Section 7) " + "=" * 38)
    advisor = IndexAdvisor(schema)
    report = advisor.recommend([CHANG_AUTHOR_QUERY, CHANG_ANY_QUERY])
    print(report.describe())
    recommended = FileQueryEngine(schema, text, report.config)
    run(recommended, CHANG_AUTHOR_QUERY, "chang-author")
    print(
        f"  index entries: recommended={recommended.statistics().total_region_entries} "
        f"vs full={full.statistics().total_region_entries}"
    )


if __name__ == "__main__":
    main()
