"""Citation analysis: multi-variable joins, LIKE, and PAT search.

The paper's introduction motivates queries no text tool can express —
join-like questions over file content.  This example runs them:

- which references cite a paper authored by Chang? (two range variables);
- whose last names start with "Cor"? (LIKE — PAT's lexical search);
- where does "Taylor series" appear as a phrase? (proximity search);
- which references mention "Taylor" at least twice? (frequency search).

Run:  python examples/citation_analysis.py
"""

from repro import FileQueryEngine
from repro.db.values import canonical
from repro.workloads.bibtex import bibtex_schema, generate_bibtex


def main() -> None:
    text = generate_bibtex(entries=120, seed=13)
    engine = FileQueryEngine(bibtex_schema(), text)
    print(f"corpus: {len(text)} bytes, 120 references\n")

    # -- multi-variable join: citers of Chang's papers --------------------
    join_query = (
        "SELECT r1.Key, r2.Key FROM Reference r1, Reference r2 "
        "WHERE r1.Referred.RefKey = r2.Key "
        'AND r2.Authors.Name.Last_Name = "Chang"'
    )
    result = engine.query(join_query)
    print(f"citations of Chang-authored papers ({result.stats.strategy}):")
    for citing, cited in sorted(
        (str(canonical(a)), str(canonical(b))) for a, b in result.rows
    )[:6]:
        print(f"  {citing}  cites  {cited}")
    print(f"  ({len(result.rows)} citation pairs; candidates narrowed to "
          f"{result.stats.candidate_regions} regions)\n")

    # -- LIKE: lexical prefix search ---------------------------------------
    like_query = (
        'SELECT r.Key FROM Reference r WHERE r.Authors.Name.Last_Name LIKE "Cor*"'
    )
    like_result = engine.query(like_query)
    print(f'authors matching "Cor*": {len(like_result.rows)} references')
    print(f"  plan: {engine.plan(like_query).optimized_expression}\n")

    # -- PAT proximity: phrase occurrences ----------------------------------
    phrase_spans = engine.index.phrase("Taylor", "series", max_gap=2)
    print(f'"Taylor series" phrase occurrences: {len(phrase_spans)}')

    # -- PAT frequency search ------------------------------------------------
    twice = engine.index.regions_with_frequency("Reference", "Taylor", 2)
    once = engine.index.regions_with_frequency("Reference", "Taylor", 1)
    print(f'references mentioning "Taylor": {len(once)}; at least twice: {len(twice)}')

    # -- everything agrees with the database baseline ------------------------
    for query in (join_query, like_query):
        assert (
            engine.query(query).canonical_rows()
            == engine.baseline_query(query).canonical_rows()
        )
    print("\nall answers verified against the standard-database baseline")


if __name__ == "__main__":
    main()
