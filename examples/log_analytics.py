"""Log analytics: querying structured log files through a database view.

Log files are among the semi-structured sources the paper's introduction
motivates.  Entries have nested request blocks, so the derived RIG has
depth, and the advisor can drop indexes without losing exactness.

Run:  python examples/log_analytics.py
"""

from collections import Counter

from repro import FileQueryEngine, IndexAdvisor
from repro.db.values import canonical
from repro.workloads.logs import (
    ERROR_QUERY,
    FAILED_GETS_QUERY,
    STORAGE_ERRORS_QUERY,
    generate_log,
    log_schema,
)


def main() -> None:
    text = generate_log(entries=2000, seed=9, error_rate=0.12, requests_per_entry=2)
    schema = log_schema()
    engine = FileQueryEngine(schema, text)
    print(f"log: {len(text)} bytes, 2000 entries")
    print(engine.statistics().summary())
    print()

    for query in (ERROR_QUERY, STORAGE_ERRORS_QUERY, FAILED_GETS_QUERY):
        result = engine.query(query)
        print(f"{query}")
        print(
            f"  -> {len(result.rows)} entries "
            f"({result.stats.strategy}, bytes parsed {result.stats.bytes_parsed})"
        )

    # Which components fail most?  Project the component of every ERROR.
    components = engine.query(
        'SELECT e.Component FROM Entry e WHERE e.Level = "ERROR"'
    )
    counts = Counter(str(canonical(row[0])) for row in components.rows)
    print("\nerror components (distinct values):", dict(counts))

    # What does the minimal index for this workload look like?
    advisor = IndexAdvisor(schema)
    report = advisor.recommend([ERROR_QUERY, STORAGE_ERRORS_QUERY, FAILED_GETS_QUERY])
    print()
    print(report.describe())


if __name__ == "__main__":
    main()
