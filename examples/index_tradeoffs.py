"""The efficiency / amount-of-indexing tradeoff (Sections 6 and 7).

Sweeps index configurations from minimal to full on one corpus and reports,
for the paper's Chang-as-author query:

- index size (entries and estimated bytes);
- candidate count vs answer count;
- bytes of file text parsed (the quantity partial indexing trades for
  index space).

Run:  python examples/index_tradeoffs.py
"""

from repro import FileQueryEngine, IndexConfig
from repro.workloads.bibtex import CHANG_AUTHOR_QUERY, bibtex_schema, generate_bibtex

CONFIGS = [
    ("reference-only", IndexConfig.partial({"Reference"})),
    ("paper-partial", IndexConfig.partial({"Reference", "Key", "Last_Name"})),
    (
        "advisor-minimal",
        IndexConfig.partial({"Reference", "Authors", "Last_Name"}),
    ),
    (
        "scoped",
        IndexConfig.partial({"Reference"}).with_scoped("Last_Name", "Authors"),
    ),
    ("full", IndexConfig.full()),
]


def main() -> None:
    text = generate_bibtex(entries=300, seed=21)
    schema = bibtex_schema()
    print(f"corpus: {len(text)} bytes; query: {CHANG_AUTHOR_QUERY}\n")
    header = (
        f"{'config':<16} {'index entries':>13} {'index bytes':>11} "
        f"{'strategy':>17} {'cands':>5} {'rows':>4} {'parsed bytes':>12}"
    )
    print(header)
    print("-" * len(header))
    for label, config in CONFIGS:
        engine = FileQueryEngine(schema, text, config)
        stats = engine.statistics()
        result = engine.query(CHANG_AUTHOR_QUERY)
        print(
            f"{label:<16} {stats.total_region_entries:>13} "
            f"{stats.estimated_bytes:>11} {result.stats.strategy:>17} "
            f"{result.stats.candidate_regions:>5} {len(result.rows):>4} "
            f"{result.stats.bytes_parsed:>12}"
        )
    print(
        "\nReading guide: more indexing -> fewer candidates and less file "
        "parsing;\nthe scoped index matches full indexing's precision at a "
        "fraction of the size\n(Section 7's guideline)."
    )


if __name__ == "__main__":
    main()
