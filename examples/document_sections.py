"""Self-nested documents: closure queries on a cyclic RIG (Section 5.3).

SGML-like documents nest sections inside sections, so the region inclusion
graph has a cycle.  The paper's point: path queries with transitive closure
("a section, at *any* nesting depth, about X") — expensive in a traditional
OODBMS — collapse to a single inclusion join on region indexes.

Run:  python examples/document_sections.py
"""

from repro import FileQueryEngine
from repro.core.pathexpr import (
    containment_closure,
    max_nesting_depth,
    nesting_layers,
)
from repro.rig.derive import derive_full_rig
from repro.workloads.sgml import generate_sgml, sgml_schema


def main() -> None:
    text = generate_sgml(documents=30, depth=5, branching=2, seed=4)
    schema = sgml_schema()
    engine = FileQueryEngine(schema, text)
    sections = engine.index.instance.get("Section")
    print(f"corpus: {len(text)} bytes, {len(sections)} sections")

    # The derived RIG is cyclic: Section -> Subsections -> Section.
    rig = derive_full_rig(schema.grammar, include_root=False)
    print("RIG has the cycle:",
          ("Section", "Subsections") in rig.edges
          and ("Subsections", "Section") in rig.edges)

    # Nesting structure, computed with the algebra's ω / − operators.
    layers = nesting_layers(sections)
    print(f"nesting depth: {max_nesting_depth(sections)}")
    for depth, layer in enumerate(layers):
        print(f"  depth {depth}: {len(layer)} sections")

    # Closure query: every section (any depth) with a paragraph mentioning
    # "compaction-adjacent" vocabulary - one ⊃, no fixpoint.
    hits = containment_closure(
        engine.index, "Section", "ParaText", word="nesting", mode="contains"
    )
    print(f"\nsections (any depth) mentioning 'nesting': {len(hits)}")

    # The same idea through the query language: a star path.
    query = 'SELECT d FROM Document d WHERE d.*X.TitleText = "Compaction Recovery"'
    result = engine.query(query)
    print(f"documents titled 'Compaction Recovery' somewhere: {len(result.rows)}")
    print(engine.explain(query))


if __name__ == "__main__":
    main()
